"""Balance metrics (paper Eq. 2).

``balance = max_i(|p_i|) * k / |V|`` — the ratio of the heaviest shard
to the average.  1.0 is perfect; 1.3 means the heaviest shard is 30%
above average.  *Static* balance counts vertices; *dynamic* balance
weighs each vertex by its activity (how often it appears in
transactions), which is what load actually follows.

:func:`normalized_balance` is the Fig. 5 transform
``(balance - 1) / (k - 1)`` that makes different shard counts
comparable on one axis (0 = perfect for any k, 1 = everything in one
shard).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Mapping

from repro.graph.builder import Interaction
from repro.graph.digraph import WeightedDiGraph

Assignment = Mapping[int, int]


def static_balance(graph: WeightedDiGraph, assignment: Assignment, k: int) -> float:
    """Eq. 2 over vertex *counts*.  Unassigned vertices are ignored."""
    counts = Counter()
    total = 0
    for v in graph.vertices():
        shard = assignment.get(v)
        if shard is None:
            continue
        counts[shard] += 1
        total += 1
    if total == 0:
        return 1.0
    return max(counts.values()) * k / total


def dynamic_balance(graph: WeightedDiGraph, assignment: Assignment, k: int) -> float:
    """Eq. 2 over vertex *activity weights* (floored at 1 per vertex)."""
    weights = Counter()
    total = 0
    for v in graph.vertices():
        shard = assignment.get(v)
        if shard is None:
            continue
        w = max(1, graph.vertex_weight(v))
        weights[shard] += w
        total += w
    if total == 0:
        return 1.0
    return max(weights.values()) * k / total


def window_balance(
    interactions: Iterable[Interaction], assignment: Assignment, k: int
) -> float:
    """Eq. 2 over per-window load: each interaction endpoint adds one
    unit of load to its shard.  This is the "dynamic balance" curve of
    Fig. 3 — the load shards *experience* in the window, regardless of
    how many vertices they store."""
    load = Counter()
    total = 0
    for it in interactions:
        for v in (it.src, it.dst):
            shard = assignment.get(v)
            if shard is None:
                continue
            load[shard] += 1
            total += 1
    if total == 0:
        return 1.0
    return max(load.values()) * k / total


def normalized_balance(balance: float, k: int) -> float:
    """Fig. 5 normalisation: (balance - 1) / (k - 1); 0 best, 1 worst."""
    if k <= 1:
        return 0.0
    return (balance - 1.0) / (k - 1.0)
