"""Per-window metric time series (the Fig. 3 data structure).

Each point carries the window timestamp and the four per-window metrics
(static/dynamic edge-cut and balance) plus the cumulative move count at
that moment.  The replay engine appends points as it streams the
history; the analysis code renders them as the paper's curves.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class MetricPoint:
    """Metrics of one sampling window."""

    ts: float                  # window start (seconds since genesis)
    static_edge_cut: float
    dynamic_edge_cut: float
    static_balance: float
    dynamic_balance: float
    cumulative_moves: int = 0
    interactions: int = 0      # activity in the window (context, Fig. 1-ish)


@dataclasses.dataclass
class MetricSeries:
    """An append-only series of per-window metric points."""

    method: str
    k: int
    points: List[MetricPoint] = dataclasses.field(default_factory=list)

    def append(self, point: MetricPoint) -> None:
        if self.points and point.ts < self.points[-1].ts:
            raise ValueError(
                f"out-of-order metric point: {point.ts} < {self.points[-1].ts}"
            )
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[MetricPoint]:
        return iter(self.points)

    def column(self, name: str) -> List[float]:
        """Extract one metric as a list (name = attribute name)."""
        return [getattr(p, name) for p in self.points]

    def timestamps(self) -> List[float]:
        return [p.ts for p in self.points]

    def between(self, start: float, end: float) -> "MetricSeries":
        """Sub-series with start <= ts < end (used for Fig. 4 periods)."""
        sub = MetricSeries(method=self.method, k=self.k)
        for p in self.points:
            if start <= p.ts < end:
                sub.points.append(p)
        return sub

    @property
    def total_moves(self) -> int:
        return self.points[-1].cumulative_moves if self.points else 0

    def moves_between(self, start: float, end: float) -> int:
        """Moves that occurred within [start, end)."""
        before = 0
        last = 0
        for p in self.points:
            if p.ts < start:
                before = p.cumulative_moves
            if p.ts < end:
                last = p.cumulative_moves
        return max(0, last - before)
