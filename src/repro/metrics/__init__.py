"""Metrics: the paper's three evaluation quantities.

* :mod:`~repro.metrics.edgecut` — Eq. 1, static (distinct edges) and
  dynamic (weighted / per-window interactions) edge-cut, plus the
  cross-shard *transaction* ratio;
* :mod:`~repro.metrics.balance` — Eq. 2, static (vertex count) and
  dynamic (activity-weighted) balance, plus the Fig. 5 normalisation;
* :mod:`~repro.metrics.moves` — vertices (and state bytes) relocated by
  a repartitioning;
* :mod:`~repro.metrics.series` — 4-hour-window time series (Fig. 3);
* :mod:`~repro.metrics.stats` — five-number summaries and densities for
  the Fig. 4 box/violin panels.
"""

from repro.metrics.edgecut import (
    cross_shard_transaction_ratio,
    dynamic_edge_cut,
    static_edge_cut,
    window_edge_cut,
)
from repro.metrics.balance import (
    dynamic_balance,
    normalized_balance,
    static_balance,
    window_balance,
)
from repro.metrics.moves import count_moves, moved_state_bytes
from repro.metrics.series import MetricPoint, MetricSeries
from repro.metrics.stats import DistributionSummary, summarize

__all__ = [
    "static_edge_cut",
    "dynamic_edge_cut",
    "window_edge_cut",
    "cross_shard_transaction_ratio",
    "static_balance",
    "dynamic_balance",
    "window_balance",
    "normalized_balance",
    "count_moves",
    "moved_state_bytes",
    "MetricPoint",
    "MetricSeries",
    "DistributionSummary",
    "summarize",
]
