"""Kernel backend selection.

Three interchangeable backends implement the same kernel surface:

``pure``
    Per-row transliterations of the legacy loops; the bit-identity
    oracle every other backend is tested against.
``array``
    Stdlib batch formulation (slices, ``Counter``, counting sort).
    Always available; the default when numpy is absent.
``numpy``
    Vectorised formulation over zero-copy views of the columns.
    Optional — install with ``pip install .[numpy]``.

Selection: the ``REPRO_KERNEL_BACKEND`` environment variable
(``pure`` | ``array`` | ``numpy``), else ``numpy`` when importable,
else ``array``.  Resolution is lazy and cached; tests flip backends
with :func:`set_backend` / :func:`using_backend`.
"""

from __future__ import annotations

import importlib
import os
from contextlib import contextmanager
from typing import List, Optional

ENV_VAR = "REPRO_KERNEL_BACKEND"

_MODULES = {
    "pure": "repro.kernels.pure",
    "array": "repro.kernels.arraykernels",
    "numpy": "repro.kernels.numpykernels",
}

_active_name: Optional[str] = None
_active_module = None


def _numpy_usable() -> bool:
    try:
        importlib.import_module("numpy")
    except ImportError:
        return False
    return True


def _resolve_default() -> str:
    return "numpy" if _numpy_usable() else "array"


def backend_name() -> str:
    """Name of the active backend, resolving it on first use."""
    global _active_name
    if _active_name is None:
        requested = os.environ.get(ENV_VAR, "").strip().lower()
        if requested:
            if requested not in _MODULES:
                raise ValueError(
                    f"{ENV_VAR}={requested!r}: expected one of "
                    f"{sorted(_MODULES)}"
                )
            _active_name = requested
        else:
            _active_name = _resolve_default()
    return _active_name


def active():
    """The active backend module (resolved lazily, cached)."""
    global _active_module
    if _active_module is None:
        _active_module = importlib.import_module(_MODULES[backend_name()])
    return _active_module


def set_backend(name: str) -> None:
    """Force a backend by name (``pure`` | ``array`` | ``numpy``)."""
    global _active_name, _active_module
    if name not in _MODULES:
        raise ValueError(f"unknown kernel backend {name!r}")
    _active_name = name
    _active_module = importlib.import_module(_MODULES[name])


@contextmanager
def using_backend(name: str):
    """Temporarily switch backends (test helper)."""
    global _active_name, _active_module
    prev_name, prev_module = _active_name, _active_module
    set_backend(name)
    try:
        yield _active_module
    finally:
        _active_name, _active_module = prev_name, prev_module


def available_backends() -> List[str]:
    """Backends importable in this environment, in preference order."""
    names = ["pure", "array"]
    if _numpy_usable():
        names.append("numpy")
    return names
