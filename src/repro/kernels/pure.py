"""Pure-python reference kernels — the bit-identity oracle.

Every function here is a straight per-row / per-edge transliteration of
the loop it replaced, kept deliberately simple: no bulk counting, no
slicing tricks.  The other backends must reproduce these outputs
*exactly* (including dict key order, which the cumulative graph's
adjacency insertion order and therefore cold METIS results depend on);
``tests/kernels/test_parity.py`` holds them to it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.types import PACK_MASK, PACK_SHIFT, StreamState, WindowBatch

#: kind-code of VertexKind.CONTRACT in the columnar byte columns
#: (enum definition order: ACCOUNT=0, CONTRACT=1)
CONTRACT_CODE = 1


# ----------------------------------------------------------------------
# replay stream


def window_pass(ts, src, dst, tx, skind, dkind, lo: int, hi: int,
                state: StreamState) -> WindowBatch:
    """Shared per-window pass: first-seens, edge/vertex counts, new edges."""
    edge_seen = state.edge_seen
    contract_known = state.contract_known
    cur_max = state.max_vertex

    first_seen: List[Tuple[int, int, float]] = []
    upgrades: List[int] = []
    edge_weights: Dict[int, int] = {}
    vertex_weights: Dict[int, int] = {}
    new_edges: List[int] = []
    placement_groups: List[Tuple[int, int, Tuple[int, ...]]] = []

    bucket_lo = lo
    bucket_tx: Optional[int] = None
    bucket_new: List[int] = []

    for i in range(lo, hi):
        s = src[i]
        d = dst[i]
        t = tx[i]
        if bucket_tx is None:
            bucket_tx = t
        elif t != bucket_tx:
            if bucket_new:
                placement_groups.append((bucket_lo, i, tuple(bucket_new)))
                bucket_new = []
            bucket_lo = i
            bucket_tx = t

        if s > cur_max:
            cur_max = s
            first_seen.append((s, skind[i], ts[i]))
            bucket_new.append(s)
            if skind[i] == CONTRACT_CODE:
                contract_known.add(s)
        elif skind[i] == CONTRACT_CODE and s not in contract_known:
            contract_known.add(s)
            upgrades.append(s)
        if d > cur_max:
            cur_max = d
            first_seen.append((d, dkind[i], ts[i]))
            bucket_new.append(d)
            if dkind[i] == CONTRACT_CODE:
                contract_known.add(d)
        elif dkind[i] == CONTRACT_CODE and d not in contract_known:
            contract_known.add(d)
            upgrades.append(d)

        p = (s << PACK_SHIFT) | d
        edge_weights[p] = edge_weights.get(p, 0) + 1
        vertex_weights[s] = vertex_weights.get(s, 0) + 1
        if d != s:
            vertex_weights[d] = vertex_weights.get(d, 0) + 1
        if p not in edge_seen:
            edge_seen.add(p)
            if d != s:
                new_edges.append(p)

    if bucket_new:
        placement_groups.append((bucket_lo, hi, tuple(bucket_new)))
    state.max_vertex = cur_max
    return WindowBatch(first_seen, upgrades, edge_weights, vertex_weights,
                       new_edges, placement_groups)


def graph_batch(ts, src, dst, skind, dkind, lo: int, hi: int):
    """Aggregate rows [lo, hi) for a standalone window digraph.

    The stateless sibling of :func:`window_pass` (fresh graph, no
    cross-window memory): returns ``(first_seen, upgrades,
    edge_weights, vertex_weights)`` with the same order conventions.
    """
    seen: set = set()
    contracts: set = set()
    first_seen: List[Tuple[int, int, float]] = []
    upgrades: List[int] = []
    edge_weights: Dict[int, int] = {}
    vertex_weights: Dict[int, int] = {}
    for i in range(lo, hi):
        s = src[i]
        d = dst[i]
        if s not in seen:
            seen.add(s)
            first_seen.append((s, skind[i], ts[i]))
            if skind[i] == CONTRACT_CODE:
                contracts.add(s)
        elif skind[i] == CONTRACT_CODE and s not in contracts:
            contracts.add(s)
            upgrades.append(s)
        if d not in seen:
            seen.add(d)
            first_seen.append((d, dkind[i], ts[i]))
            if dkind[i] == CONTRACT_CODE:
                contracts.add(d)
        elif dkind[i] == CONTRACT_CODE and d not in contracts:
            contracts.add(d)
            upgrades.append(d)
        p = (s << PACK_SHIFT) | d
        edge_weights[p] = edge_weights.get(p, 0) + 1
        vertex_weights[s] = vertex_weights.get(s, 0) + 1
        if d != s:
            vertex_weights[d] = vertex_weights.get(d, 0) + 1
    return first_seen, upgrades, edge_weights, vertex_weights


def account_window(src, dst, lo: int, hi: int, new_edges, shard,
                   k: int) -> Tuple[int, int, List[int], List[int], int]:
    """Per-method window accounting over a dense shard array.

    Returns ``(wcut, wtotal, load, weight_delta, static_cut_delta)``
    with exactly the legacy per-row semantics: every row credits its
    src shard one activity weight (dst too when distinct); a
    cross-shard row bumps wcut and both loads; a same-shard row bumps
    its shard's load twice.  The static-cut delta counts the window's
    new distinct non-self edges that are cross-shard — equivalent to
    the legacy "new edge at a cross-shard row" test because accounting
    never moves vertices mid-window.
    """
    load = [0] * k
    wdelta = [0] * k
    wcut = 0
    wtotal = 0
    for i in range(lo, hi):
        s = src[i]
        d = dst[i]
        s_src = shard[s]
        wdelta[s_src] += 1
        if s == d:
            continue
        s_dst = shard[d]
        wdelta[s_dst] += 1
        if s_src != s_dst:
            wcut += 1
            load[s_src] += 1
            load[s_dst] += 1
        else:
            load[s_src] += 2
        wtotal += 1
    sdelta = 0
    for p in new_edges:
        if shard[p >> PACK_SHIFT] != shard[p & PACK_MASK]:
            sdelta += 1
    return wcut, wtotal, load, wdelta, sdelta


def static_cut_count(esrc, edst, shard) -> int:
    """Distinct directed non-self edges whose endpoints' shards differ."""
    cut = 0
    for s, d in zip(esrc, edst):
        if shard[s] != shard[d]:
            cut += 1
    return cut


def max_index(src, dst, lo: int, hi: int) -> int:
    """Highest dense vertex index in rows [lo, hi); -1 when empty."""
    m = -1
    for i in range(lo, hi):
        if src[i] > m:
            m = src[i]
        if dst[i] > m:
            m = dst[i]
    return m


# ----------------------------------------------------------------------
# CSR construction


class CSRAccumulator:
    """Cumulative undirected-graph accumulator over dense columns.

    The reference dict-of-dicts fold: per row, both adjacency
    directions and both endpoint activities.  ``snapshot`` emits
    adjacency in per-vertex insertion order (= first occurrence of the
    vertex pair in either direction).
    """

    __slots__ = ("_adj", "_activity")

    def __init__(self) -> None:
        self._adj: List[Dict[int, int]] = []
        self._activity: List[int] = []

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    def advance(self, src, dst, lo: int, hi: int) -> None:
        adj = self._adj
        activity = self._activity
        for i in range(lo, hi):
            s = src[i]
            d = dst[i]
            top = s if s > d else d
            while len(adj) <= top:
                adj.append({})
                activity.append(0)
            activity[s] += 1
            if d == s:
                continue
            activity[d] += 1
            adj_s = adj[s]
            adj_s[d] = adj_s.get(d, 0) + 1
            adj_d = adj[d]
            adj_d[s] = adj_d.get(s, 0) + 1

    def snapshot(self, vertex_weights: str):
        return _emit_adj(self._adj, self._activity, vertex_weights)


def csr_from_window(src, dst, lo: int, hi: int, vertex_weights: str):
    """One-shot compacted CSR of rows [lo, hi).

    Local indices are assigned in first-appearance order over the
    interleaved endpoint stream (src of every row; dst when distinct
    from src — self-interactions number their single endpoint once).
    Returns ``(xadj, adjncy, adjwgt, vwgt, dense_ids)`` where
    ``dense_ids[local]`` is the log-dense index of each CSR vertex.
    """
    local: Dict[int, int] = {}
    adj: List[Dict[int, int]] = []
    activity: List[int] = []
    for i in range(lo, hi):
        s = src[i]
        d = dst[i]
        ls = local.get(s)
        if ls is None:
            ls = local[s] = len(adj)
            adj.append({})
            activity.append(0)
        activity[ls] += 1
        if d == s:
            continue
        ld = local.get(d)
        if ld is None:
            ld = local[d] = len(adj)
            adj.append({})
            activity.append(0)
        activity[ld] += 1
        adj_s = adj[ls]
        adj_s[ld] = adj_s.get(ld, 0) + 1
        adj_d = adj[ld]
        adj_d[ls] = adj_d.get(ls, 0) + 1
    xadj, adjncy, adjwgt, vwgt, _n = _emit_adj(adj, activity, vertex_weights)
    return xadj, adjncy, adjwgt, vwgt, list(local)


def _emit_adj(adj, activity, vertex_weights: str):
    n = len(adj)
    xadj = [0] * (n + 1)
    adjncy: List[int] = []
    adjwgt: List[int] = []
    for v in range(n):
        for nbr, w in adj[v].items():
            adjncy.append(nbr)
            adjwgt.append(w)
        xadj[v + 1] = len(adjncy)
    if vertex_weights == "unit":
        vwgt = [1] * n
    else:
        vwgt = [max(1, a) for a in activity]
    return xadj, adjncy, adjwgt, vwgt, n


# ----------------------------------------------------------------------
# partition refinement / matching primitives


def part_weights(graph, part: Sequence[int], k: int,
                 skip_unassigned: bool = False) -> List[int]:
    """Vertex-weight totals per part (``part[v] < 0`` skipped on request)."""
    vwgt = graph.vwgt
    weights = [0] * k
    if skip_unassigned:
        for v in range(len(vwgt)):
            p = part[v]
            if p >= 0:
                weights[p] += vwgt[v]
    else:
        for v in range(len(vwgt)):
            weights[part[v]] += vwgt[v]
    return weights


def boundary_list(graph, part: Sequence[int]) -> List[int]:
    """Vertices with at least one cross-part neighbor, ascending."""
    xadj, adjncy = graph.xadj, graph.adjncy
    out: List[int] = []
    for v in range(len(xadj) - 1):
        pv = part[v]
        for i in range(xadj[v], xadj[v + 1]):
            if part[adjncy[i]] != pv:
                out.append(v)
                break
    return out


def cut_value(graph, part: Sequence[int]) -> int:
    """Total weight of cut edges (each undirected edge counted once)."""
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    cut = 0
    for v in range(len(xadj) - 1):
        pv = part[v]
        for i in range(xadj[v], xadj[v + 1]):
            if part[adjncy[i]] != pv:
                cut += adjwgt[i]
    return cut // 2


def hem_matching(graph, order: Sequence[int]) -> List[int]:
    """Heavy-edge matching over a caller-shuffled visit order."""
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    n = len(xadj) - 1
    match = [-1] * n
    for v in order:
        if match[v] != -1:
            continue
        best = -1
        best_w = -1
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if match[u] == -1 and u != v and adjwgt[i] > best_w:
                best = u
                best_w = adjwgt[i]
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    return match


def unassigned_list(part: Sequence[int]) -> List[int]:
    """Indices with ``part[v] < 0``, ascending."""
    return [v for v in range(len(part)) if part[v] < 0]


def max_weighted_degree(graph) -> int:
    """Largest per-vertex sum of incident edge weights (0 when edgeless).

    The gain bound of FM refinement: every vertex's move gain lies in
    ``[-max_weighted_degree, +max_weighted_degree]``, which sizes the
    :class:`~repro.kernels.types.GainBuckets` array.
    """
    xadj, adjwgt = graph.xadj, graph.adjwgt
    best = 0
    for v in range(len(xadj) - 1):
        s = 0
        for i in range(xadj[v], xadj[v + 1]):
            s += adjwgt[i]
        if s > best:
            best = s
    return best


def conn_matrix(
    graph, part: Sequence[int], k: int, vertices: Sequence[int],
) -> Tuple[List[int], List[int], List[int]]:
    """Part-connectivity rows of ``vertices``, flattened row-major.

    Returns ``(conn, first_pos, movable)``.  ``conn`` and ``first_pos``
    have length ``len(vertices) * k``: row ``r`` covers
    ``vertices[r]``, and entry ``p`` holds the summed weight of its
    edges into part ``p`` / the *absolute adjncy index* of its first
    neighbor in part ``p`` (``-1`` when part ``p`` is not adjacent —
    the presence test, exact even for zero-weight edges).  Unassigned
    neighbors (``part < 0``) are excluded.  ``first_pos`` encodes the
    legacy per-vertex conn-dict insertion order: parts sorted by it are
    in first-encounter order over the adjacency, which is the k-way
    tie-break the refinement selectors contract to.

    ``movable`` has one entry per row: 1 iff some adjacent part
    ``p != part[vertices[r]]`` has ``conn[p] > conn[own]`` (``own``
    connectivity counts as 0 for unassigned subjects) — i.e. the vertex
    has a positive-cut-gain destination *before* any balance check.
    The test depends only on the row, so a cached row's flag stays
    exact until the row is invalidated; the k-way refiners use it to
    skip the (vast, in warm starts) no-gain majority without running
    the move selector.
    """
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    m = len(vertices)
    conn = [0] * (m * k)
    first_pos = [-1] * (m * k)
    movable = [0] * m
    base = 0
    for r, v in enumerate(vertices):
        for i in range(xadj[v], xadj[v + 1]):
            p = part[adjncy[i]]
            if p < 0:
                continue
            idx = base + p
            conn[idx] += adjwgt[i]
            if first_pos[idx] < 0:
                first_pos[idx] = i
        own = part[v]
        internal = conn[base + own] if own >= 0 else 0
        for p in range(k):
            if p == own:
                continue
            if first_pos[base + p] >= 0 and conn[base + p] > internal:
                movable[r] = 1
                break
        base += k
    return conn, first_pos, movable


def gain_vector(graph, part: Sequence[int],
                vertices: Sequence[int]) -> List[int]:
    """FM move gains of ``vertices``: cross-part minus same-part weight.

    Exactly the per-vertex ``compute_gain`` of the FM pass, batched:
    a neighbor in ``part[v]`` subtracts its edge weight, any other
    neighbor (including unassigned) adds it.
    """
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    out: List[int] = []
    for v in vertices:
        pv = part[v]
        g = 0
        for i in range(xadj[v], xadj[v + 1]):
            if part[adjncy[i]] == pv:
                g -= adjwgt[i]
            else:
                g += adjwgt[i]
        out.append(g)
    return out


def kl_proposals(graph, shard: Sequence[int], k: int,
                 min_gain: int) -> List[Tuple[int, int, int, int]]:
    """Batched KL gather: per-vertex best positive-gain shard moves.

    The kernel form of ``KLPartitioner._gather_proposals``: for every
    assigned vertex (``shard[v] >= 0``, ascending — the insertion order
    of the legacy shard dict), connectivity is summed per adjacent
    assigned shard and the winning destination is the *first shard in
    adjacency first-encounter order* achieving the maximal gain
    ``conn[t] - conn[own]``; vertices whose best gain reaches
    ``min_gain`` yield a ``(vertex, src, dst, gain)`` tuple.
    """
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    out: List[Tuple[int, int, int, int]] = []
    for v in range(len(xadj) - 1):
        s = shard[v]
        if s < 0:
            continue
        conn: Dict[int, int] = {}
        for i in range(xadj[v], xadj[v + 1]):
            t = shard[adjncy[i]]
            if t >= 0:
                conn[t] = conn.get(t, 0) + adjwgt[i]
        internal = conn.get(s, 0)
        best_t = -1
        best_gain = min_gain - 1
        for t, w in conn.items():
            if t == s:
                continue
            gain = w - internal
            if gain > best_gain:
                best_gain = gain
                best_t = t
        if best_t >= 0:
            out.append((v, s, best_t, best_gain))
    return out
