"""Batch kernels for the replay/partitioning hot path.

The kernels operate directly on the dense columns
:class:`repro.graph.columnar.ColumnarLog` exposes (timestamps, interned
src/dst indices, transaction ids, kind codes) and return plain
python/array values the engine folds back into its data structures.
Every kernel is implemented by three interchangeable backends — see
:mod:`repro.kernels.backend` for selection — and all backends are
bit-identical to the ``pure`` reference, including every ordering the
downstream graphs observe (``docs/kernels.md`` spells out the
contract).

Hot-path callers grab the backend module once per window/pass::

    from repro import kernels
    kr = kernels.active()
    batch = kr.window_pass(ts, src, dst, tx, sk, dk, lo, hi, state)

This package deliberately imports nothing from the rest of ``repro``
(the graph/metis/core layers import *it*).
"""

from repro.kernels.backend import (
    ENV_VAR,
    active,
    available_backends,
    backend_name,
    set_backend,
    using_backend,
)
from repro.kernels.types import (
    PACK_MASK,
    PACK_SHIFT,
    GainBuckets,
    StreamState,
    WindowBatch,
)

__all__ = [
    "ENV_VAR",
    "GainBuckets",
    "PACK_MASK",
    "PACK_SHIFT",
    "StreamState",
    "WindowBatch",
    "active",
    "available_backends",
    "backend_name",
    "set_backend",
    "using_backend",
]
