"""Numpy batch backend: vectorised kernels over zero-copy column views.

The columns ``ColumnarLog`` exposes are stdlib ``array`` objects, which
support the buffer protocol — ``np.frombuffer`` wraps a window of them
without copying.  Row-level work becomes whole-array arithmetic
(``bincount`` folds, boolean masks); the remaining python loops run at
the *distinct* level only, ordered by ``np.unique(..., return_index)``
plus a stable argsort so every first-occurrence order the pure oracle
guarantees is reproduced exactly.

Optional backend — selected only when numpy is importable (see
:mod:`repro.kernels.backend`).  Bit-identical to
:mod:`repro.kernels.pure`; ``tests/kernels/test_parity.py`` holds it
to that across all kernels.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.kernels.arraykernels import _from_row_counts
from repro.kernels.pure import CONTRACT_CODE, hem_matching
from repro.kernels.pure import conn_matrix as _pure_conn_matrix
from repro.kernels.pure import gain_vector as _pure_gain_vector
from repro.kernels.pure import kl_proposals as _pure_kl_proposals
from repro.kernels.types import PACK_MASK, PACK_SHIFT, StreamState, WindowBatch

#: kernels this backend claims a >=3x microloop speedup for
#: (enforced by benchmarks/bench_kernels.py on medium-scale batches).
#: The windowed stream kernels are deliberately absent: at the paper's
#: ~100-row metric windows the per-call numpy overhead eats the
#: vectorisation win, so their acceleration claim would be false —
#: they stay bit-identical and roughly at parity instead.  So is
#: ``boundary_list``: the pure scan early-exits per vertex, so its
#: cost shrinks exactly when the boundary grows and the measured ratio
#: swings between ~1x and ~3x with the partition's boundary fraction.
ACCELERATED = frozenset({
    "account_window", "static_cut_count", "max_index", "cut_value",
    "conn_matrix", "gain_vector", "kl_proposals", "max_weighted_degree",
})

__all__ = [
    "ACCELERATED", "CSRAccumulator", "account_window", "boundary_list",
    "conn_matrix", "csr_from_window", "cut_value", "gain_vector",
    "graph_batch", "hem_matching", "kl_proposals", "max_index",
    "max_weighted_degree", "part_weights", "static_cut_count",
    "unassigned_list", "window_pass",
]

_I64 = np.dtype(np.int64)
_F64 = np.dtype(np.float64)
_I8 = np.dtype(np.int8)
_I32 = np.dtype(np.int32)


def _win(col, lo: int, hi: int, dtype):
    """Zero-copy window of a buffer-protocol column; copies for lists."""
    try:
        return np.frombuffer(col, dtype=dtype, count=hi - lo,
                             offset=lo * dtype.itemsize)
    except TypeError:
        return np.asarray(col[lo:hi], dtype=dtype)


def _whole(col, dtype):
    try:
        return np.frombuffer(col, dtype=dtype)
    except TypeError:
        return np.asarray(col, dtype=dtype)


def _first_occurrence(values: np.ndarray):
    """Distinct values of ``values`` in first-occurrence order.

    Returns ``(distinct, first_pos)`` where ``first_pos`` is the index
    of each distinct value's first appearance, both ordered by it.
    """
    uniq, idx = np.unique(values, return_index=True)
    order = np.argsort(idx, kind="stable")
    return uniq[order], idx[order]


def max_index(src, dst, lo: int, hi: int) -> int:
    if hi <= lo:
        return -1
    sl = _win(src, lo, hi, _I64)
    dl = _win(dst, lo, hi, _I64)
    m = sl.max()
    md = dl.max()
    return int(md if md > m else m)


def window_pass(ts, src, dst, tx, skind, dkind, lo: int, hi: int,
                state: StreamState) -> WindowBatch:
    n = hi - lo
    if n == 0:
        return WindowBatch([], [], {}, {}, [], [])
    sl = _win(src, lo, hi, _I64)
    dl = _win(dst, lo, hi, _I64)

    # distinct directed edges in first-occurrence order (the cumulative
    # graph's adjacency insertion order depends on it)
    packed = (sl << PACK_SHIFT) | dl
    uniq, idx, counts = np.unique(packed, return_index=True,
                                  return_counts=True)
    order = np.argsort(idx, kind="stable")
    edge_weights: Dict[int, int] = dict(
        zip(uniq[order].tolist(), counts[order].tolist()))

    # per-vertex activity increments (order-free: folded additively)
    nonself = sl != dl
    width = int(max(sl.max(), dl.max())) + 1
    acts = np.bincount(sl, minlength=width)
    actd = np.bincount(dl[nonself], minlength=width)
    act = acts + actd
    nz = np.flatnonzero(act)
    vertex_weights: Dict[int, int] = dict(zip(nz.tolist(),
                                              act[nz].tolist()))

    edge_seen = state.edge_seen
    fresh = [p for p in edge_weights if p not in edge_seen]
    new_edges: List[int] = []
    if fresh:
        edge_seen.update(fresh)
        new_edges = [p for p in fresh
                     if (p >> PACK_SHIFT) != (p & PACK_MASK)]

    # first-seen vertices: interleaved endpoint stream preserves the
    # src-before-dst appearance order; interning is in first-appearance
    # order, so dense index > stream max *is* the first-seen test
    first_seen: List[Tuple[int, int, float]] = []
    placement_groups: List[Tuple[int, int, Tuple[int, ...]]] = []
    cur = state.max_vertex
    contract_known = state.contract_known
    inter = np.empty(2 * n, dtype=np.int64)
    inter[0::2] = sl
    inter[1::2] = dl
    if width - 1 > cur:
        tsl = _win(ts, lo, hi, _F64)
        skl = _win(skind, lo, hi, _I8)
        dkl = _win(dkind, lo, hi, _I8)
        vs, pos = _first_occurrence(inter)
        mask = vs > cur
        vs = vs[mask]
        pos = pos[mask]
        # transaction buckets: change-point bounds, then bucket-of-row
        # lookup for each (few) new vertices
        txl = _win(tx, lo, hi, _I64)
        bounds = np.concatenate(
            ([0], np.flatnonzero(txl[1:] != txl[:-1]) + 1, [n]))
        rows = pos >> 1
        buckets = np.searchsorted(bounds, rows, side="right") - 1
        cur_b = -1
        bucket_new: List[int] = []
        for v, p, r, b in zip(vs.tolist(), pos.tolist(),
                              rows.tolist(), buckets.tolist()):
            if b != cur_b:
                if bucket_new:
                    placement_groups.append(
                        (lo + int(bounds[cur_b]), lo + int(bounds[cur_b + 1]),
                         tuple(bucket_new)))
                    bucket_new = []
                cur_b = b
            kc = int(dkl[r]) if p & 1 else int(skl[r])
            first_seen.append((v, kc, float(tsl[r])))
            bucket_new.append(v)
            if kc == CONTRACT_CODE:
                contract_known.add(v)
        if bucket_new:
            placement_groups.append(
                (lo + int(bounds[cur_b]), lo + int(bounds[cur_b + 1]),
                 tuple(bucket_new)))
        state.max_vertex = width - 1

    # contract-kind upgrades, at the distinct level: first
    # contract-code appearance per vertex, in appearance order
    upgrades: List[int] = []
    skl = _win(skind, lo, hi, _I8)
    dkl = _win(dkind, lo, hi, _I8)
    kint = np.empty(2 * n, dtype=np.int8)
    kint[0::2] = skl
    kint[1::2] = dkl
    cmask = kint == CONTRACT_CODE
    if cmask.any():
        cand = inter[cmask]
        cvs, _cpos = _first_occurrence(cand)
        for v in cvs.tolist():
            if v not in contract_known:
                contract_known.add(v)
                upgrades.append(v)

    return WindowBatch(first_seen, upgrades, edge_weights, vertex_weights,
                       new_edges, placement_groups)


def graph_batch(ts, src, dst, skind, dkind, lo: int, hi: int):
    if hi <= lo:
        return [], [], {}, {}
    n = hi - lo
    sl = _win(src, lo, hi, _I64)
    dl = _win(dst, lo, hi, _I64)
    tsl = _win(ts, lo, hi, _F64)
    skl = _win(skind, lo, hi, _I8)
    dkl = _win(dkind, lo, hi, _I8)

    packed = (sl << PACK_SHIFT) | dl
    uniq, idx, counts = np.unique(packed, return_index=True,
                                  return_counts=True)
    order = np.argsort(idx, kind="stable")
    edge_weights: Dict[int, int] = dict(
        zip(uniq[order].tolist(), counts[order].tolist()))

    nonself = sl != dl
    width = int(max(sl.max(), dl.max())) + 1
    act = (np.bincount(sl, minlength=width)
           + np.bincount(dl[nonself], minlength=width))
    nz = np.flatnonzero(act)
    vertex_weights: Dict[int, int] = dict(zip(nz.tolist(),
                                              act[nz].tolist()))

    inter = np.empty(2 * n, dtype=np.int64)
    inter[0::2] = sl
    inter[1::2] = dl
    kint = np.empty(2 * n, dtype=np.int8)
    kint[0::2] = skl
    kint[1::2] = dkl

    vs, pos = _first_occurrence(inter)
    first_pos: Dict[int, int] = dict(zip(vs.tolist(), pos.tolist()))
    first_seen: List[Tuple[int, int, float]] = []
    for v, p in zip(vs.tolist(), pos.tolist()):
        r = p >> 1
        kc = int(dkl[r]) if p & 1 else int(skl[r])
        first_seen.append((v, kc, float(tsl[r])))

    # upgrade iff the first contract-code appearance is strictly after
    # the first appearance (first-seen-as-contract joins silently)
    upgrades: List[int] = []
    cmask = kint == CONTRACT_CODE
    if cmask.any():
        cvs, cpos = _first_occurrence(inter[cmask])
        all_cpos = np.flatnonzero(cmask)
        for v, ci in zip(cvs.tolist(), cpos.tolist()):
            if int(all_cpos[ci]) > first_pos[v]:
                upgrades.append(v)
    return first_seen, upgrades, edge_weights, vertex_weights


def account_window(src, dst, lo: int, hi: int, new_edges, shard,
                   k: int) -> Tuple[int, int, List[int], List[int], int]:
    n = hi - lo
    if n == 0:
        return 0, 0, [0] * k, [0] * k, 0
    sl = _win(src, lo, hi, _I64)
    dl = _win(dst, lo, hi, _I64)
    sh = _whole(shard, _I32)
    a = sh[sl]
    b = sh[dl]
    nonself = sl != dl
    wtotal = int(nonself.sum())
    wdelta = np.bincount(a, minlength=k) + np.bincount(b[nonself],
                                                       minlength=k)
    cut = nonself & (a != b)
    same = nonself & ~cut
    wcut = int(cut.sum())
    load = (np.bincount(a[cut], minlength=k)
            + np.bincount(b[cut], minlength=k)
            + 2 * np.bincount(a[same], minlength=k))
    sdelta = 0
    if new_edges:
        ne = np.asarray(new_edges, dtype=np.int64)
        sdelta = int((sh[ne >> PACK_SHIFT] != sh[ne & PACK_MASK]).sum())
    return wcut, wtotal, load.tolist(), wdelta.tolist(), sdelta


def static_cut_count(esrc, edst, shard) -> int:
    if not len(esrc):
        return 0
    es = _whole(esrc, _I64)
    ed = _whole(edst, _I64)
    sh = _whole(shard, _I32)
    return int((sh[es] != sh[ed]).sum())


# ----------------------------------------------------------------------
# CSR construction


class CSRAccumulator:
    """Cumulative accumulator: vectorised fold, vectorised emit.

    ``advance`` packs canonical pairs whole-window and merges the
    *distinct* pairs (first-occurrence ordered) into an insertion-order
    dict — the order ``snapshot``'s emit reproduces.  The emit builds
    the interleaved endpoint stream of the distinct pairs and stable-
    sorts it by vertex: within a vertex, entries stay in pair-insertion
    order, exactly the pure dict-of-dicts adjacency order.
    """

    __slots__ = ("_edge_weights", "_activity", "_n")

    def __init__(self) -> None:
        self._edge_weights: Dict[int, int] = {}
        self._activity = np.zeros(0, dtype=np.int64)
        self._n = 0

    @property
    def num_vertices(self) -> int:
        return self._n

    def advance(self, src, dst, lo: int, hi: int) -> None:
        if hi <= lo:
            return
        sl = _win(src, lo, hi, _I64)
        dl = _win(dst, lo, hi, _I64)
        width = int(max(sl.max(), dl.max())) + 1
        if width > self._n:
            grown = np.zeros(width, dtype=np.int64)
            grown[:self._n] = self._activity
            self._activity = grown
            self._n = width
        nonself = sl != dl
        self._activity += np.bincount(sl, minlength=self._n)
        self._activity += np.bincount(dl[nonself], minlength=self._n)
        canon = np.where(
            sl < dl, (sl << PACK_SHIFT) | dl, (dl << PACK_SHIFT) | sl,
        )[nonself]
        if not canon.size:
            return
        uniq, idx, counts = np.unique(canon, return_index=True,
                                      return_counts=True)
        order = np.argsort(idx, kind="stable")
        ew = self._edge_weights
        for p, c in zip(uniq[order].tolist(), counts[order].tolist()):
            ew[p] = ew.get(p, 0) + c

    def snapshot(self, vertex_weights: str):
        n = self._n
        ew = self._edge_weights
        m = len(ew)
        pk = np.fromiter(ew.keys(), dtype=np.int64, count=m)
        w = np.fromiter(ew.values(), dtype=np.int64, count=m)
        u = pk >> PACK_SHIFT
        v = pk & PACK_MASK
        ends = np.empty(2 * m, dtype=np.int64)
        ends[0::2] = u
        ends[1::2] = v
        nbrs = np.empty(2 * m, dtype=np.int64)
        nbrs[0::2] = v
        nbrs[1::2] = u
        wint = np.repeat(w, 2)
        order = np.argsort(ends, kind="stable")
        adjncy = nbrs[order].tolist()
        adjwgt = wint[order].tolist()
        deg = np.bincount(ends, minlength=n)
        xadj = [0] * (n + 1)
        xadj[1:] = np.cumsum(deg).tolist()
        if vertex_weights == "unit":
            vwgt = [1] * n
        else:
            vwgt = np.maximum(self._activity, 1).tolist()
        return xadj, adjncy, adjwgt, vwgt, n


def csr_from_window(src, dst, lo: int, hi: int, vertex_weights: str):
    if hi <= lo:
        return [0], [], [], [], []
    sl = _win(src, lo, hi, _I64)
    dl = _win(dst, lo, hi, _I64)
    packed = (sl << PACK_SHIFT) | dl
    uniq, idx, counts = np.unique(packed, return_index=True,
                                  return_counts=True)
    order = np.argsort(idx, kind="stable")
    rowc = dict(zip(uniq[order].tolist(), counts[order].tolist()))
    return _from_row_counts(rowc, vertex_weights)


# ----------------------------------------------------------------------
# partition refinement primitives over cached CSR views


def _np_csr(graph):
    """Cached numpy views of a CSRGraph's arrays (+ per-entry vertex ids)."""
    cached = getattr(graph, "_np_csr_cache", None)
    if cached is not None and cached[0] == len(graph.adjncy):
        return cached[1]
    xa = np.asarray(graph.xadj, dtype=np.int64)
    ad = np.asarray(graph.adjncy, dtype=np.int64)
    aw = np.asarray(graph.adjwgt, dtype=np.int64)
    vw = np.asarray(graph.vwgt, dtype=np.int64)
    vid = np.repeat(np.arange(len(xa) - 1, dtype=np.int64), np.diff(xa))
    views = (xa, ad, aw, vw, vid)
    try:
        graph._np_csr_cache = (len(graph.adjncy), views)
    except AttributeError:
        pass
    return views


def part_weights(graph, part, k: int,
                 skip_unassigned: bool = False) -> List[int]:
    _xa, _ad, _aw, vw, _vid = _np_csr(graph)
    p = np.asarray(part, dtype=np.int64)
    if skip_unassigned:
        mask = p >= 0
        return np.bincount(p[mask], weights=vw[mask],
                           minlength=k).astype(np.int64).tolist()
    return np.bincount(p, weights=vw, minlength=k).astype(np.int64).tolist()


def boundary_list(graph, part) -> List[int]:
    _xa, ad, _aw, _vw, vid = _np_csr(graph)
    p = np.asarray(part, dtype=np.int64)
    cross = p[ad] != p[vid]
    return np.unique(vid[cross]).tolist()


def cut_value(graph, part) -> int:
    _xa, ad, aw, _vw, vid = _np_csr(graph)
    p = np.asarray(part, dtype=np.int64)
    cross = p[ad] != p[vid]
    return int(aw[cross].sum()) // 2


def unassigned_list(part) -> List[int]:
    p = np.asarray(part, dtype=np.int64)
    return np.flatnonzero(p < 0).tolist()


#: below this many subject vertices the numpy set-up cost exceeds the
#: pure loop; fall back (bit-identical either way)
_SMALL = 16


def max_weighted_degree(graph) -> int:
    _xa, _ad, aw, vw, vid = _np_csr(graph)
    if not len(aw):
        return 0
    return int(np.bincount(vid, weights=aw, minlength=len(vw)).max())


def _ragged_edges(xa, vs):
    """Row index + absolute adjncy index of every edge of ``vs``.

    ``row`` repeats each subject-vertex position by its degree;
    ``edge_idx`` enumerates ``adjncy[xadj[v]:xadj[v+1]]`` ascending
    within each row — the flat order is therefore (row, adjncy index)
    lexicographic, which the first-occurrence extraction below relies
    on.
    """
    starts = xa[vs]
    counts = xa[vs + 1] - starts
    total = int(counts.sum())
    row = np.repeat(np.arange(len(vs), dtype=np.int64), counts)
    # starts - flat_start, broadcast per edge (flat_start = cumsum-counts)
    shift = np.repeat(starts + counts - np.cumsum(counts), counts)
    edge_idx = np.arange(total, dtype=np.int64) + shift
    return row, edge_idx


def conn_matrix(
    graph, part, k: int, vertices,
) -> Tuple[List[int], List[int], List[int]]:
    if len(vertices) < _SMALL:
        return _pure_conn_matrix(graph, part, k, vertices)
    xa, ad, aw, _vw, _vid = _np_csr(graph)
    vs = np.asarray(vertices, dtype=np.int64)
    m = len(vs)
    p = np.asarray(part, dtype=np.int64)
    conn = np.zeros(m * k, dtype=np.int64)
    first_pos = np.full(m * k, -1, dtype=np.int64)
    row, edge_idx = _ragged_edges(xa, vs)
    if len(row):
        nbr_part = p[ad[edge_idx]]
        valid = nbr_part >= 0
        if not valid.all():
            row = row[valid]
            edge_idx = edge_idx[valid]
            nbr_part = nbr_part[valid]
        keys = row * k + nbr_part
        conn = np.bincount(keys, weights=aw[edge_idx],
                           minlength=m * k).astype(np.int64)
        # edge_idx ascends within a row, so each key's smallest adjncy
        # index — the pure first_pos — is its first occurrence in flat
        # order.  Scatter in reverse: duplicate fancy-index writes keep
        # the last one, which in reversed order is the first occurrence.
        first_pos[keys[::-1]] = edge_idx[::-1]
    conn2 = conn.reshape(m, k)
    fp2 = first_pos.reshape(m, k)
    own = p[vs]
    own_col = np.where(own >= 0, own, 0)
    rows = np.arange(m)
    internal = np.where(own >= 0, conn2[rows, own_col], 0)
    has_gain = (fp2 >= 0) & (conn2 > internal[:, None])
    assigned = np.flatnonzero(own >= 0)
    has_gain[assigned, own_col[assigned]] = False
    movable = has_gain.any(axis=1).astype(np.int64)
    return conn.tolist(), first_pos.tolist(), movable.tolist()


def gain_vector(graph, part, vertices) -> List[int]:
    if len(vertices) < _SMALL:
        return _pure_gain_vector(graph, part, vertices)
    xa, ad, aw, _vw, _vid = _np_csr(graph)
    vs = np.asarray(vertices, dtype=np.int64)
    p = np.asarray(part, dtype=np.int64)
    row, edge_idx = _ragged_edges(xa, vs)
    if not len(row):
        return [0] * len(vs)
    w = aw[edge_idx]
    signed = np.where(p[ad[edge_idx]] == p[vs][row], -w, w)
    return np.bincount(row, weights=signed,
                       minlength=len(vs)).astype(np.int64).tolist()


def kl_proposals(graph, shard, k: int,
                 min_gain: int) -> List[Tuple[int, int, int, int]]:
    xa, ad, aw, _vw, vid = _np_csr(graph)
    n = len(xa) - 1
    if n < _SMALL or not len(ad):
        return _pure_kl_proposals(graph, shard, k, min_gain)
    sh = np.asarray(shard, dtype=np.int64)
    nbr_sh = sh[ad]
    vidx = np.flatnonzero((nbr_sh >= 0) & (sh[vid] >= 0))
    keys = vid[vidx] * k + nbr_sh[vidx]
    conn = np.bincount(keys, weights=aw[vidx],
                       minlength=n * k).astype(np.int64).reshape(n, k)
    big = len(ad)
    first_pos = np.full(n * k, big, dtype=np.int64)
    # reverse-order scatter: last duplicate write wins, so reversed
    # order leaves each key's first occurrence (vidx is ascending)
    first_pos[keys[::-1]] = vidx[::-1]
    first_pos = first_pos.reshape(n, k)

    rows = np.arange(n)
    own = np.where(sh[:n] >= 0, sh[:n], 0)
    internal = conn[rows, own]
    gain = conn - internal[:, None]
    cand = first_pos < big
    cand[rows, own] = False
    cand &= gain >= min_gain
    cand[sh[:n] < 0] = False

    any_cand = cand.any(axis=1)
    gm = np.where(cand, gain, np.iinfo(np.int64).min)
    best_gain = gm.max(axis=1)
    # among max-gain candidates, the smallest first-encounter adjncy
    # index wins — the legacy conn-dict iteration-order tie-break
    tied_pos = np.where(cand & (gm == best_gain[:, None]), first_pos, big)
    best_t = tied_pos.argmin(axis=1)
    out_rows = np.flatnonzero(any_cand)
    return list(zip(out_rows.tolist(),
                    sh[out_rows].tolist(),
                    best_t[out_rows].tolist(),
                    best_gain[out_rows].tolist()))
