"""Stdlib batch backend: bulk slicing, ``Counter`` folds, counting sort.

The default backend when numpy is not installed.  The strategy
throughout: move per-row work into C-speed constructs (slice copies,
``zip``/``map`` pipelines, ``Counter`` counting, ``bytes`` scans) and
keep python-level iteration at the *distinct* level — distinct edges,
distinct vertices, transaction buckets — which on blockchain-shaped
logs is far smaller than the row count.

Outputs are bit-identical to :mod:`repro.kernels.pure`, including
every order the downstream graphs observe; see the module docstring
there and ``tests/kernels/test_parity.py``.

Kernels with no profitable stdlib formulation (the sequential
heavy-edge matching, per-vertex CSR scans) alias the pure reference;
``ACCELERATED`` names the ones this backend claims a >=3x microloop
speedup for, which is what ``benchmarks/bench_kernels.py`` enforces.
At the paper's workload shape (edge duplication factor ~2, ~100-row
metric windows) the stdlib formulations measure at parity with the
pure loops rather than 3x ahead, so this backend claims none — its
value is being a second full implementation of the kernel contract
that runs where numpy is absent (CI parity legs exercise it).
"""

from __future__ import annotations

from collections import Counter
from operator import ne as _ne
from typing import Dict, List, Tuple

from repro.kernels.pure import (
    CONTRACT_CODE,
    boundary_list,
    conn_matrix,
    cut_value,
    gain_vector,
    graph_batch,
    hem_matching,
    kl_proposals,
    max_weighted_degree,
    part_weights,
    unassigned_list,
)
from repro.kernels.types import PACK_MASK, PACK_SHIFT, StreamState, WindowBatch

#: kernels this backend claims a speedup for (benchmark-gated >= 3x)
ACCELERATED: frozenset = frozenset()

__all__ = [
    "ACCELERATED", "CSRAccumulator", "account_window", "boundary_list",
    "conn_matrix", "csr_from_window", "cut_value", "gain_vector",
    "graph_batch", "hem_matching", "kl_proposals", "max_index",
    "max_weighted_degree", "part_weights", "static_cut_count",
    "unassigned_list", "window_pass",
]


def max_index(src, dst, lo: int, hi: int) -> int:
    if hi <= lo:
        return -1
    m = max(src[lo:hi])
    md = max(dst[lo:hi])
    return md if md > m else m


def window_pass(ts, src, dst, tx, skind, dkind, lo: int, hi: int,
                state: StreamState) -> WindowBatch:
    n = hi - lo
    if n == 0:
        return WindowBatch([], [], {}, {}, [], [])
    sl = src[lo:hi]
    dl = dst[lo:hi]

    # bulk per-row packing + counting (C-speed); the Counter's dict
    # order is first-occurrence order, which the cumulative graph's
    # adjacency insertion depends on
    edge_weights = Counter([(s << PACK_SHIFT) | d for s, d in zip(sl, dl)])
    vertex_weights = Counter(sl)
    vertex_weights.update([d for s, d in zip(sl, dl) if d != s])

    # never-seen-before edges, at the distinct level only
    edge_seen = state.edge_seen
    fresh = [p for p in edge_weights if p not in edge_seen]
    new_edges: List[int] = []
    if fresh:
        edge_seen.update(fresh)
        new_edges = [p for p in fresh if (p >> PACK_SHIFT) != (p & PACK_MASK)]

    # first-seen vertices + their placement buckets: only when the
    # window's max dense index outgrows the stream (interning is in
    # first-appearance order, so the comparison is exact); mature
    # windows skip the row scan entirely
    first_seen: List[Tuple[int, int, float]] = []
    placement_groups: List[Tuple[int, int, Tuple[int, ...]]] = []
    cur = state.max_vertex
    win_max = max(sl)
    wmd = max(dl)
    if wmd > win_max:
        win_max = wmd
    contract_known = state.contract_known
    if win_max > cur:
        txl = tx[lo:hi]
        bucket_lo = 0
        bucket_tx = txl[0]
        bucket_new: List[int] = []
        for idx in range(n):
            t = txl[idx]
            if t != bucket_tx:
                if bucket_new:
                    placement_groups.append(
                        (lo + bucket_lo, lo + idx, tuple(bucket_new)))
                    bucket_new = []
                bucket_lo = idx
                bucket_tx = t
            s = sl[idx]
            if s > cur:
                cur = s
                kc = skind[lo + idx]
                first_seen.append((s, kc, ts[lo + idx]))
                bucket_new.append(s)
                if kc == CONTRACT_CODE:
                    contract_known.add(s)
            d = dl[idx]
            if d > cur:
                cur = d
                kc = dkind[lo + idx]
                first_seen.append((d, kc, ts[lo + idx]))
                bucket_new.append(d)
                if kc == CONTRACT_CODE:
                    contract_known.add(d)
        if bucket_new:
            placement_groups.append((lo + bucket_lo, hi, tuple(bucket_new)))
        state.max_vertex = cur

    # contract-kind upgrades: a cheap byte scan skips transfer-only
    # windows; the row walk runs only when contract codes are present
    upgrades: List[int] = []
    sk = bytes(skind[lo:hi])
    dk = bytes(dkind[lo:hi])
    if CONTRACT_CODE in sk or CONTRACT_CODE in dk:
        add_known = contract_known.add
        for idx in range(n):
            if sk[idx] == CONTRACT_CODE:
                s = sl[idx]
                if s not in contract_known:
                    add_known(s)
                    upgrades.append(s)
            if dk[idx] == CONTRACT_CODE:
                d = dl[idx]
                if d not in contract_known:
                    add_known(d)
                    upgrades.append(d)

    return WindowBatch(first_seen, upgrades, dict(edge_weights),
                       dict(vertex_weights), new_edges, placement_groups)


def account_window(src, dst, lo: int, hi: int, new_edges, shard,
                   k: int) -> Tuple[int, int, List[int], List[int], int]:
    n = hi - lo
    if n == 0:
        return 0, 0, [0] * k, [0] * k, 0
    sl = src[lo:hi]
    dl = dst[lo:hi]
    a_all = [shard[s] for s in sl]
    ns_mask = list(map(_ne, sl, dl))
    wtotal = sum(ns_mask)
    if wtotal == n:
        a = a_all
        b = [shard[d] for d in dl]
    else:
        a = [x for x, m in zip(a_all, ns_mask) if m]
        b = [shard[d] for d, m in zip(dl, ns_mask) if m]

    wdelta = [0] * k
    for p, c in Counter(a_all).items():
        wdelta[p] += c
    for p, c in Counter(b).items():
        wdelta[p] += c

    cut_mask = list(map(_ne, a, b))
    wcut = sum(cut_mask)

    load = [0] * k
    if wcut:
        for p, c in Counter([x for x, m in zip(a, cut_mask) if m]).items():
            load[p] += c
        for p, c in Counter([y for y, m in zip(b, cut_mask) if m]).items():
            load[p] += c
        for p, c in Counter([x for x, m in zip(a, cut_mask) if not m]).items():
            load[p] += 2 * c
    else:
        for p, c in Counter(a).items():
            load[p] += 2 * c

    sdelta = 0
    for p in new_edges:
        if shard[p >> PACK_SHIFT] != shard[p & PACK_MASK]:
            sdelta += 1
    return wcut, wtotal, load, wdelta, sdelta


def static_cut_count(esrc, edst, shard) -> int:
    a = [shard[v] for v in esrc]
    b = [shard[v] for v in edst]
    return sum(map(_ne, a, b))


# ----------------------------------------------------------------------
# CSR construction: canonical-pair Counter + one counting-sort emit


class CSRAccumulator:
    """Flat cumulative accumulator: packed canonical pairs + Counter.

    ``advance`` is one list comprehension plus two C-level Counter
    folds per chunk — per-row dict updates are gone.  ``snapshot``
    places both directions of every distinct pair with one counting
    sort over the Counter's insertion order, which reproduces the pure
    accumulator's adjacency order exactly (a pair is inserted at its
    first occurrence in either direction, same as the dict-of-dicts
    fold).
    """

    __slots__ = ("_edge_weights", "_activity", "_n")

    def __init__(self) -> None:
        self._edge_weights: Counter = Counter()   # canonical packed pair -> w
        self._activity: Counter = Counter()       # dense index -> appearances
        self._n = 0

    @property
    def num_vertices(self) -> int:
        return self._n

    def advance(self, src, dst, lo: int, hi: int) -> None:
        if hi <= lo:
            return
        sl = src[lo:hi]
        dl = dst[lo:hi]
        m = max(sl)
        md = max(dl)
        if md > m:
            m = md
        if m >= self._n:
            self._n = m + 1
        self._activity.update(sl)
        self._activity.update([d for s, d in zip(sl, dl) if d != s])
        self._edge_weights.update(
            [((s << PACK_SHIFT) | d) if s < d else ((d << PACK_SHIFT) | s)
             for s, d in zip(sl, dl) if s != d]
        )

    def snapshot(self, vertex_weights: str):
        return _counting_sort_emit(
            self._edge_weights, self._n, vertex_weights, self._activity)


def csr_from_window(src, dst, lo: int, hi: int, vertex_weights: str):
    if hi <= lo:
        return [0], [], [], [], []
    sl = src[lo:hi]
    dl = dst[lo:hi]
    rowc = Counter([(s << PACK_SHIFT) | d for s, d in zip(sl, dl)])
    return _from_row_counts(rowc, vertex_weights)


def _from_row_counts(rowc: Dict[int, int], vertex_weights: str):
    """Compacted CSR from distinct packed rows in first-occurrence order.

    Identical rows have identical endpoints, so walking the *distinct*
    row patterns in first-occurrence order reproduces the pure kernel's
    first-appearance numbering (src before dst within a row) exactly.
    Shared with the numpy backend, which derives ``rowc`` vectorised.
    """
    local: Dict[int, int] = {}
    dense_ids: List[int] = []
    activity: List[int] = []
    canon: Dict[int, int] = {}
    for p, c in rowc.items():
        s = p >> PACK_SHIFT
        d = p & PACK_MASK
        ls = local.get(s)
        if ls is None:
            ls = local[s] = len(dense_ids)
            dense_ids.append(s)
            activity.append(0)
        activity[ls] += c
        if d == s:
            continue
        ld = local.get(d)
        if ld is None:
            ld = local[d] = len(dense_ids)
            dense_ids.append(d)
            activity.append(0)
        activity[ld] += c
        key = ((ls << PACK_SHIFT) | ld) if ls < ld else ((ld << PACK_SHIFT) | ls)
        canon[key] = canon.get(key, 0) + c
    xadj, adjncy, adjwgt, vwgt, _n = _counting_sort_emit(
        canon, len(dense_ids), vertex_weights, activity)
    return xadj, adjncy, adjwgt, vwgt, dense_ids


def _counting_sort_emit(edge_weights: Dict[int, int], n: int,
                        vertex_weights: str, activity):
    """Emit CSR arrays from canonical pair weights via counting sort.

    ``activity`` is a dense-indexed list or a Counter keyed by vertex;
    only read when ``vertex_weights == "activity"``.
    """
    xadj = [0] * (n + 1)
    for p in edge_weights:
        xadj[(p >> PACK_SHIFT) + 1] += 1
        xadj[(p & PACK_MASK) + 1] += 1
    for v in range(n):
        xadj[v + 1] += xadj[v]
    pos = xadj[:n]
    total = xadj[n]
    adjncy = [0] * total
    adjwgt = [0] * total
    for p, w in edge_weights.items():
        u = p >> PACK_SHIFT
        v = p & PACK_MASK
        i = pos[u]
        adjncy[i] = v
        adjwgt[i] = w
        pos[u] = i + 1
        j = pos[v]
        adjncy[j] = u
        adjwgt[j] = w
        pos[v] = j + 1
    if vertex_weights == "unit":
        vwgt = [1] * n
    elif isinstance(activity, list):
        vwgt = [a if a > 0 else 1 for a in activity]
    else:
        vwgt = [1] * n
        for v, c in activity.items():
            if c > 1:
                vwgt[v] = c
    return xadj, adjncy, adjwgt, vwgt, n
