"""Shared value types of the kernel layer.

These are backend-neutral: every backend consumes and produces the
same :class:`StreamState` / :class:`WindowBatch` shapes, so the engine
code is written once and the parity suite can compare backends
field-for-field.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

#: dense vertex indices fit 32 bits; a directed edge packs into one
#: int64 key as ``(src << 32) | dst`` — the unit of edge identity for
#: the seen-set, the per-window edge Counter and the CSR accumulators.
PACK_SHIFT = 32
PACK_MASK = 0xFFFFFFFF


class StreamState:
    """Cross-window replay-stream state owned by the engine.

    Tracks what has been streamed so far in dense-index space: the
    highest dense vertex index seen (interning is in first-appearance
    order, so ``index > max_vertex`` *is* the first-appearance test),
    the set of distinct directed edges, the flat endpoint arrays of
    those edges (the static-cut recount input) and which vertices are
    already known to be contracts (so kind upgrades are emitted at most
    once per vertex).
    """

    __slots__ = ("max_vertex", "edge_seen", "esrc", "edst", "contract_known")

    def __init__(self) -> None:
        self.max_vertex = -1
        self.edge_seen: set = set()
        self.esrc = array("q")
        self.edst = array("q")
        self.contract_known: set = set()

    @property
    def num_edges(self) -> int:
        return len(self.esrc)

    def record_new_edges(self, packed: List[int]) -> None:
        """Fold a window's new distinct non-self edges into the flat arrays."""
        esrc = self.esrc
        edst = self.edst
        for p in packed:
            esrc.append(p >> PACK_SHIFT)
            edst.append(p & PACK_MASK)


class GainBuckets:
    """FM gain-bucket priority structure (max gain first, FIFO within).

    The classic Fiduccia–Mattheyses replacement for a binary heap:
    vertices live in dense per-gain buckets over ``[-max_abs_gain,
    max_abs_gain]`` and the pop order is *identical* to a lazy-deletion
    heap ordered by ``(-gain, push counter)`` — the highest-gain bucket
    drains in push (FIFO) order, because each bucket's entries are
    appended in global push order and a key can only live in one bucket
    at a time.  Stale entries (vertex locked, or its current gain no
    longer matches the bucket it was pushed into) are the *caller's*
    job to skip at pop time, exactly as with the heap it replaces.

    Backend-neutral by nature: the structure is inherently sequential
    (every push/pop depends on the previous one), so all three kernel
    backends share this one implementation.
    """

    __slots__ = ("_buckets", "_heads", "_offset", "_max")

    def __init__(self, max_abs_gain: int) -> None:
        if max_abs_gain < 0:
            raise ValueError(f"max_abs_gain must be >= 0, got {max_abs_gain}")
        self._offset = max_abs_gain
        size = 2 * max_abs_gain + 1
        self._buckets: List[List[int]] = [[] for _ in range(size)]
        self._heads = [0] * size       # per-bucket read cursor
        self._max = -1                 # highest possibly-nonempty bucket

    def push(self, v: int, gain: int) -> None:
        """Add an entry for ``v`` at ``gain``; |gain| must be within
        the bound given at construction."""
        idx = gain + self._offset
        self._buckets[idx].append(v)
        if idx > self._max:
            self._max = idx

    def pop(self):
        """``(vertex, gain)`` of the oldest entry in the highest
        nonempty bucket, or ``None`` when drained."""
        while self._max >= 0:
            bucket = self._buckets[self._max]
            head = self._heads[self._max]
            if head >= len(bucket):
                if bucket:
                    bucket.clear()
                self._heads[self._max] = 0
                self._max -= 1
                continue
            self._heads[self._max] = head + 1
            return bucket[head], self._max - self._offset
        return None


class WindowBatch:
    """Everything one shared window pass precomputes for the engine.

    Attributes:
        first_seen: ``(dense, kind_code, timestamp)`` per vertex making
            its first log appearance in the window, in appearance order
            (src before dst within a row).
        upgrades: dense indices of already-known vertices observed with
            a CONTRACT kind code for the first time (graph kind
            upgrade), in row order.
        edge_weights: packed directed edge -> interaction count for the
            window, keys in first-occurrence order (the cumulative
            graph's adjacency insertion order depends on it).
        vertex_weights: dense index -> activity increment (src counts
            every row, dst only when distinct from src).
        new_edges: packed distinct non-self directed edges first seen in
            this window, in first-occurrence order.  Accounting derives
            its static-cut delta from these directly: the shard map is
            frozen while a window is accounted, so "first-occurrence
            row was cross-shard" and "the new edge is cross-shard" are
            the same predicate.
        placement_groups: ``(row_lo, row_hi, new_dense)`` per
            transaction bucket that introduced at least one first-seen
            vertex; ``new_dense`` lists those vertices in appearance
            order.  Buckets without new vertices never reach the
            placement loop at all.
    """

    __slots__ = (
        "first_seen", "upgrades", "edge_weights", "vertex_weights",
        "new_edges", "placement_groups",
    )

    def __init__(
        self,
        first_seen: List[Tuple[int, int, float]],
        upgrades: List[int],
        edge_weights: Dict[int, int],
        vertex_weights: Dict[int, int],
        new_edges: List[int],
        placement_groups: List[Tuple[int, int, Tuple[int, ...]]],
    ) -> None:
        self.first_seen = first_seen
        self.upgrades = upgrades
        self.edge_weights = edge_weights
        self.vertex_weights = vertex_weights
        self.new_edges = new_edges
        self.placement_groups = placement_groups
