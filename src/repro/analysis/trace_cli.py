"""``repro-trace`` — dataset tooling in the spirit of the paper's
published trace.

The paper releases its extracted Ethereum interactions "in easily
understandable format" for further analysis and benchmarking; this CLI
does the equivalent for the synthetic trace, and analyses any trace in
the same format (including a real one, dropped in):

    repro-trace export --scale small --out trace.txt.gz
    repro-trace stats trace.txt.gz
    repro-trace verify trace.txt.gz
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.runner import SCALES, config_for_scale


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Export, inspect and verify interaction traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("export", help="generate and write a synthetic trace")
    exp.add_argument("--scale", default="small", choices=SCALES)
    exp.add_argument("--seed", type=int, default=42)
    exp.add_argument("--out", required=True, help="output path (.gz supported)")

    st = sub.add_parser("stats", help="descriptive statistics of a trace file")
    st.add_argument("path")

    ver = sub.add_parser("verify", help="check a trace file's integrity")
    ver.add_argument("path")

    args = parser.parse_args(argv)
    if args.command == "export":
        return _export(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "verify":
        return _verify(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _export(args) -> int:
    from repro.ethereum.workload import generate_history
    from repro.graph.io import write_trace

    result = generate_history(config_for_scale(args.scale, args.seed))
    n = write_trace(result.builder.log, args.out)
    print(f"wrote {n} interactions "
          f"({result.num_transactions} transactions) to {args.out}")
    return 0


def _stats(args) -> int:
    from repro.graph.analytics import compute_trace_stats, render_trace_stats
    from repro.graph.builder import build_graph
    from repro.graph.io import read_trace

    log = list(read_trace(args.path))
    if not log:
        print("trace is empty", file=sys.stderr)
        return 1
    graph = build_graph(log)
    print(render_trace_stats(compute_trace_stats(graph, log)))
    return 0


def _verify(args) -> int:
    from repro.errors import TraceFormatError
    from repro.graph.io import read_trace

    count = 0
    last_ts = float("-inf")
    try:
        for it in read_trace(args.path):
            if it.timestamp < last_ts:
                print(f"FAIL: out-of-order timestamp at record {count}",
                      file=sys.stderr)
                return 1
            last_ts = it.timestamp
            count += 1
    except TraceFormatError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {count} records, time-ordered, well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
