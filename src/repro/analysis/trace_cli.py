"""``repro-trace`` — dataset tooling in the spirit of the paper's
published trace.

The paper releases its extracted Ethereum interactions "in easily
understandable format" for further analysis and benchmarking; this CLI
does the equivalent for the synthetic trace, and analyses any trace in
either supported format (including a real one, dropped in):

    repro-trace export --scale small --out trace.txt.gz
    repro-trace export --scale small --format binary --out trace.rct
    repro-trace export --scale large --format v3 --out eth_large.rct
    repro-trace convert trace.txt.gz trace.rct
    repro-trace convert trace.rct trace_v3.rct --format v3
    repro-trace stats trace.rct --window-hours 24
    repro-trace verify trace.rct

Formats: text v1 (human-readable interchange), binary rctrace v2 (the
mmap-able columnar replay format) and compressed binary rctrace v3
(delta/varint columns + per-section zlib framing — the Ethereum-scale
storage format; see :mod:`repro.graph.io` for both layouts).  Binary
exports stream through a bounded-memory chunked writer, so
``--scale large --format v3`` emits a multi-million-row trace without
ever holding the log in memory.  ``stats``/``verify``/``convert``
sniff the input format and version from the file's magic, never the
extension.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.runner import SCALES, config_for_scale


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Export, convert, inspect and verify interaction traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("export", help="generate and write a synthetic trace")
    exp.add_argument("--scale", default="small", choices=SCALES)
    exp.add_argument("--seed", type=int, default=42)
    exp.add_argument("--out", required=True, help="output path (.gz supported)")
    exp.add_argument("--format", default="auto",
                     choices=("auto", "text", "binary", "v2", "v3"),
                     help="trace format; 'auto' picks binary (v2) for "
                     ".rct/.rct.gz paths, text otherwise; 'v3' writes "
                     "the compressed delta/varint format")

    conv = sub.add_parser("convert", help="convert a trace between formats")
    conv.add_argument("src", help="input trace (format sniffed)")
    conv.add_argument("dst", help="output path")
    conv.add_argument("--format", default="auto",
                      choices=("auto", "text", "binary", "v2", "v3"),
                      help="output format; 'auto' infers from dst "
                      "extension; 'v2'/'v3' force a binary version "
                      "(the v1/v2<->v3 upgrade path)")

    st = sub.add_parser("stats", help="descriptive statistics of a trace file")
    st.add_argument("path")
    st.add_argument("--window-hours", type=float, default=24.0,
                    help="window width for the per-window activity table "
                    "(default: 24; 0 disables the table)")

    ver = sub.add_parser("verify", help="check a trace file's integrity")
    ver.add_argument("path")

    args = parser.parse_args(argv)
    if args.command == "export":
        return _export(args)
    if args.command == "convert":
        return _convert(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "verify":
        return _verify(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _resolve_format(fmt: str, out_path: str) -> tuple:
    """CLI format token -> (``"text"``/``"binary"``, binary version)."""
    from repro.graph.io import TRACE_VERSION, TRACE_VERSION_V3, default_trace_format

    if fmt == "auto":
        fmt = default_trace_format(out_path)
    if fmt == "v2":
        return "binary", TRACE_VERSION
    if fmt == "v3":
        return "binary", TRACE_VERSION_V3
    return fmt, TRACE_VERSION


def _export(args) -> int:
    fmt, version = _resolve_format(args.format, args.out)
    if fmt == "binary":
        # stream through the chunked writer: bounded memory even at
        # --scale large (multi-million rows), identical bytes otherwise
        from repro.ethereum.export import export_workload_trace

        result = export_workload_trace(
            config_for_scale(args.scale, args.seed), args.out,
            version=version,
        )
        n, transactions = result.rows, result.transactions
        label = f"binary v{version}"
    else:
        from repro.ethereum.workload import generate_history

        from repro.graph.io import write_trace

        generated = generate_history(config_for_scale(args.scale, args.seed))
        n = write_trace(generated.builder.log, args.out)
        transactions = generated.num_transactions
        label = "text v1"
    print(f"wrote {n} interactions "
          f"({transactions} transactions) to {args.out} "
          f"[{label}]")
    return 0


def _convert(args) -> int:
    from repro.errors import TraceFormatError
    from repro.graph.io import convert_trace, trace_format, trace_version

    fmt, version = _resolve_format(args.format, args.dst)
    try:
        src_fmt = trace_format(args.src)
        src_ver = trace_version(args.src)
        n = convert_trace(args.src, args.dst, fmt=fmt, version=version)
    except TraceFormatError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    out_label = f"binary v{version}" if fmt == "binary" else "text v1"
    src_label = f"{src_fmt} v{src_ver}"
    print(f"converted {n} interactions: {args.src} [{src_label}] "
          f"-> {args.dst} [{out_label}]")
    return 0


def _stats(args) -> int:
    from repro.errors import TraceFormatError
    from repro.graph.analytics import (
        compute_trace_stats,
        compute_window_stats,
        render_trace_stats,
        render_window_stats,
    )
    from repro.graph.builder import build_graph
    from repro.graph.io import load_trace_log, trace_version

    try:
        version = trace_version(args.path)     # the one and only sniff
        fmt = "binary" if version != 1 else "text"
        log = load_trace_log(args.path, fmt=fmt)
    except TraceFormatError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    if not len(log):
        print("trace is empty", file=sys.stderr)
        return 1
    graph = build_graph(log)
    print(f"[{args.path}: {fmt} format (rctrace v{version}), "
          f"{len(log)} records]")
    print(render_trace_stats(compute_trace_stats(graph, log)))
    if args.window_hours > 0:
        window = args.window_hours * 3600.0
        print()
        print(render_window_stats(compute_window_stats(log, window), window))
    return 0


def _verify(args) -> int:
    from repro.errors import TraceFormatError
    from repro.graph.io import load_columnar, read_trace, trace_version

    try:
        version = trace_version(args.path)     # one sniff decides all
        if version != 1:
            # load_columnar's verify pass covers checksum, section
            # lengths/encodings, time-ordering, kind codes and bounds
            log = load_columnar(args.path, verify=True)
            print(f"OK: {len(log)} records, {log.num_vertices} vertices, "
                  f"binary v{version}, "
                  "checksum + ordering verified")
            return 0
        count = 0
        last_ts = float("-inf")
        for it in read_trace(args.path):
            if it.timestamp < last_ts:
                print(f"FAIL: out-of-order timestamp at record {count}",
                      file=sys.stderr)
                return 1
            last_ts = it.timestamp
            count += 1
    except TraceFormatError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {count} records, time-ordered, well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
