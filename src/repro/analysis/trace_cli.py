"""``repro-trace`` — dataset tooling in the spirit of the paper's
published trace.

The paper releases its extracted Ethereum interactions "in easily
understandable format" for further analysis and benchmarking; this CLI
does the equivalent for the synthetic trace, and analyses any trace in
either supported format (including a real one, dropped in):

    repro-trace export --scale small --out trace.txt.gz
    repro-trace export --scale small --format binary --out trace.rct
    repro-trace convert trace.txt.gz trace.rct
    repro-trace stats trace.rct --window-hours 24
    repro-trace verify trace.rct

Formats: text v1 (human-readable interchange) and binary rctrace v2
(the mmap-able columnar replay format — see :mod:`repro.graph.io` for
the layout).  ``stats``/``verify``/``convert`` sniff the input format
from the file's magic, never the extension.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.runner import SCALES, config_for_scale


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Export, convert, inspect and verify interaction traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("export", help="generate and write a synthetic trace")
    exp.add_argument("--scale", default="small", choices=SCALES)
    exp.add_argument("--seed", type=int, default=42)
    exp.add_argument("--out", required=True, help="output path (.gz supported)")
    exp.add_argument("--format", default="auto",
                     choices=("auto", "text", "binary"),
                     help="trace format; 'auto' picks binary for "
                     ".rct/.rct.gz paths, text otherwise")

    conv = sub.add_parser("convert", help="convert a trace between formats")
    conv.add_argument("src", help="input trace (format sniffed)")
    conv.add_argument("dst", help="output path")
    conv.add_argument("--format", default="auto",
                      choices=("auto", "text", "binary"),
                      help="output format; 'auto' infers from dst extension")

    st = sub.add_parser("stats", help="descriptive statistics of a trace file")
    st.add_argument("path")
    st.add_argument("--window-hours", type=float, default=24.0,
                    help="window width for the per-window activity table "
                    "(default: 24; 0 disables the table)")

    ver = sub.add_parser("verify", help="check a trace file's integrity")
    ver.add_argument("path")

    args = parser.parse_args(argv)
    if args.command == "export":
        return _export(args)
    if args.command == "convert":
        return _convert(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "verify":
        return _verify(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _resolve_format(fmt: str, out_path: str) -> str:
    from repro.graph.io import default_trace_format

    return default_trace_format(out_path) if fmt == "auto" else fmt


def _export(args) -> int:
    from repro.ethereum.workload import generate_history
    from repro.graph.columnar import ColumnarLog
    from repro.graph.io import write_columnar, write_trace

    fmt = _resolve_format(args.format, args.out)
    result = generate_history(config_for_scale(args.scale, args.seed))
    if fmt == "binary":
        n = write_columnar(ColumnarLog(result.builder.log), args.out)
    else:
        n = write_trace(result.builder.log, args.out)
    print(f"wrote {n} interactions "
          f"({result.num_transactions} transactions) to {args.out} "
          f"[{fmt} v{2 if fmt == 'binary' else 1}]")
    return 0


def _convert(args) -> int:
    from repro.errors import TraceFormatError
    from repro.graph.io import convert_trace, trace_format

    fmt = _resolve_format(args.format, args.dst)
    try:
        src_fmt = trace_format(args.src)
        n = convert_trace(args.src, args.dst, fmt=fmt)
    except TraceFormatError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"converted {n} interactions: {args.src} [{src_fmt}] "
          f"-> {args.dst} [{fmt}]")
    return 0


def _stats(args) -> int:
    from repro.errors import TraceFormatError
    from repro.graph.analytics import (
        compute_trace_stats,
        compute_window_stats,
        render_trace_stats,
        render_window_stats,
    )
    from repro.graph.builder import build_graph
    from repro.graph.io import load_trace_log, trace_format

    try:
        fmt = trace_format(args.path)
        log = load_trace_log(args.path, fmt=fmt)   # no re-sniff
    except TraceFormatError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    if not len(log):
        print("trace is empty", file=sys.stderr)
        return 1
    graph = build_graph(log)
    print(f"[{args.path}: {fmt} format, {len(log)} records]")
    print(render_trace_stats(compute_trace_stats(graph, log)))
    if args.window_hours > 0:
        window = args.window_hours * 3600.0
        print()
        print(render_window_stats(compute_window_stats(log, window), window))
    return 0


def _verify(args) -> int:
    from repro.errors import TraceFormatError
    from repro.graph.io import load_columnar, read_trace, trace_format

    try:
        if trace_format(args.path) == "binary":
            # load_columnar's verify pass covers checksum, section
            # lengths, time-ordering, kind codes and index bounds
            log = load_columnar(args.path, verify=True)
            print(f"OK: {len(log)} records, {log.num_vertices} vertices, "
                  "binary v2, checksum + ordering verified")
            return 0
        count = 0
        last_ts = float("-inf")
        for it in read_trace(args.path):
            if it.timestamp < last_ts:
                print(f"FAIL: out-of-order timestamp at record {count}",
                      file=sys.stderr)
                return 1
            last_ts = it.timestamp
            count += 1
    except TraceFormatError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {count} records, time-ordered, well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
