"""ASCII rendering of tables, sparklines and box plots.

Benchmarks run in terminals; every figure's ``render_*`` uses these
helpers so the output style is uniform and diffable.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    cols = len(headers)
    cells = [[str(h) for h in headers]] + [
        [_fmt(row[i]) if i < len(row) else "" for i in range(cols)] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0])))
    lines.append("  ".join("-" * widths[i] for i in range(cols)))
    for row in cells[1:]:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(cols)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def sparkline(values: Sequence[float], width: int = 60, log: bool = False) -> str:
    """A one-line intensity chart of a series (resampled to ``width``)."""
    if not values:
        return ""
    vals = list(values)
    if log:
        vals = [math.log10(max(v, 1e-12)) for v in vals]
    if len(vals) > width:
        # average-pool down to width buckets
        pooled = []
        for i in range(width):
            lo = i * len(vals) // width
            hi = max(lo + 1, (i + 1) * len(vals) // width)
            pooled.append(sum(vals[lo:hi]) / (hi - lo))
        vals = pooled
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[5] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def box_plot_row(
    minimum: float, q1: float, median: float, q3: float, maximum: float,
    lo: float, hi: float, width: int = 40,
) -> str:
    """One-line box-and-whisker: ``|----[==M==]------|`` on [lo, hi]."""
    if hi <= lo:
        return "|" + " " * (width - 2) + "|"

    def pos(v: float) -> int:
        return max(0, min(width - 1, int((v - lo) / (hi - lo) * (width - 1))))

    cells = [" "] * width
    for i in range(pos(minimum), pos(maximum) + 1):
        cells[i] = "-"
    for i in range(pos(q1), pos(q3) + 1):
        cells[i] = "="
    cells[pos(minimum)] = "|"
    cells[pos(maximum)] = "|"
    cells[pos(median)] = "M"
    return "".join(cells)


def format_si(value: float) -> str:
    """1234567 → '1.2M' — for the Fig. 4/5 move counts."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.0f}"
