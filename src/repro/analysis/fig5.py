"""Fig. 5 — metrics versus shard count for all five methods.

The paper's Fig. 5 compares dynamic edge-cut, *normalised* dynamic
balance ((balance-1)/(k-1)) and total moves with k ∈ {2, 4, 8} over the
whole history.  Expected shapes: edge-cut worsens with k for every
method; METIS-family beats hashing and KL on edge-cut; hashing and KL
win on dynamic balance; METIS moves ≫ P-/TR-METIS moves; and hashing at
k = 8 shows ~88% multi-shard transactions (the §II-C headline number).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.analysis.render import ascii_table, format_si
from repro.analysis.runner import ExperimentRunner
from repro.core.registry import PAPER_ORDER
from repro.metrics.balance import normalized_balance
from repro.metrics.edgecut import cross_shard_transaction_ratio


@dataclasses.dataclass(frozen=True)
class Fig5Row:
    method: str
    k: int
    dynamic_edge_cut: float       # mean over active windows, full history
    dynamic_balance: float        # mean over active windows
    normalized_dynamic_balance: float
    total_moves: int
    cross_shard_tx_ratio: float   # final-assignment transaction ratio


def compute_fig5(
    runner: ExperimentRunner,
    ks: Tuple[int, ...] = (2, 4, 8),
    methods: Tuple[str, ...] = tuple(PAPER_ORDER),
    seed: int = 1,
) -> List[Fig5Row]:
    rows: List[Fig5Row] = []
    log = runner.log   # synthetic or trace-backed; same replay surface
    # the whole (method × k) grid fans out of one shared log stream
    rs = runner.results_for(methods, ks, seed=seed)
    for method in methods:
        for k in ks:
            result = rs.get(method, k, seed)
            pts = [p for p in result.series.points if p.interactions > 0]
            cut = sum(p.dynamic_edge_cut for p in pts) / len(pts) if pts else 0.0
            bal = sum(p.dynamic_balance for p in pts) / len(pts) if pts else 1.0
            rows.append(
                Fig5Row(
                    method=str(method),
                    k=k,
                    dynamic_edge_cut=cut,
                    dynamic_balance=bal,
                    normalized_dynamic_balance=normalized_balance(bal, k),
                    total_moves=result.total_moves,
                    cross_shard_tx_ratio=cross_shard_transaction_ratio(
                        log, result.assignment
                    ),
                )
            )
    return rows


def render_fig5(rows: List[Fig5Row]) -> str:
    table_rows = [
        (
            r.method,
            r.k,
            f"{r.dynamic_edge_cut:.3f}",
            f"{r.normalized_dynamic_balance:.3f}",
            format_si(r.total_moves),
            f"{r.cross_shard_tx_ratio:.3f}",
        )
        for r in rows
    ]
    return ascii_table(
        ["method", "k", "dyn edge-cut", "norm dyn balance", "moves", "x-shard tx"],
        table_rows,
        title="Fig. 5 — metrics vs number of shards (full history)",
    )


def hash_k8_multishard(rows: List[Fig5Row]) -> float:
    """The §II-C headline: hashing at k=8 multi-shard transaction ratio
    (paper: ~0.88)."""
    for r in rows:
        if r.method == "hash" and r.k == 8:
            return r.cross_shard_tx_ratio
    return float("nan")
