"""Fig. 4 — per-period metric distributions for all five methods.

The paper's Fig. 4 shows box-and-whisker + violin plots of dynamic
edge-cut, dynamic balance and total moves for the five methods over
four sub-periods of 2017 (01-06, 06-09, 09-12, 12-01), in
configurations with 2 and 8 shards.  Expected shapes: HASH worst
edge-cut / zero moves; KL balanced with many moves; METIS best
edge-cut / worst balance / most moves; P-METIS better balance than
METIS; TR-METIS ≈ P-METIS with far fewer moves.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.analysis.render import ascii_table, box_plot_row, format_si
from repro.analysis.runner import ExperimentRunner
from repro.core.registry import PAPER_ORDER
from repro.ethereum.history import FIG4_PERIODS
from repro.metrics.stats import DistributionSummary, summarize


@dataclasses.dataclass(frozen=True)
class Fig4Cell:
    """One (method, period) cell of the figure."""

    method: str
    k: int
    period: str
    edge_cut: DistributionSummary
    balance: DistributionSummary
    moves: int


def compute_fig4(
    runner: ExperimentRunner,
    k: int,
    methods: Tuple[str, ...] = tuple(PAPER_ORDER),
    seed: int = 1,
) -> List[Fig4Cell]:
    """All cells for one shard-count configuration."""
    cells: List[Fig4Cell] = []
    # one shared pass over the log for every uncached method
    rs = runner.results_for(methods, (k,), seed=seed)
    for method in methods:
        result = rs.get(method, k, seed)
        for label, start, end in FIG4_PERIODS:
            sub = result.series.between(start, end)
            pts = [p for p in sub.points if p.interactions > 0]
            if not pts:
                continue
            cells.append(
                Fig4Cell(
                    method=str(method),
                    k=k,
                    period=label,
                    edge_cut=summarize([p.dynamic_edge_cut for p in pts]),
                    balance=summarize([p.dynamic_balance for p in pts]),
                    moves=result.series.moves_between(start, end),
                )
            )
    return cells


def render_fig4(cells: List[Fig4Cell]) -> str:
    if not cells:
        return "Fig. 4 — (no data)"
    k = cells[0].k
    out: List[str] = [f"Fig. 4 — method distributions over 2017 periods, k = {k}"]
    for metric, getter, lo, hi in (
        ("dynamic edge-cut", lambda c: c.edge_cut, 0.0, 1.0),
        ("dynamic balance", lambda c: c.balance, 1.0, float(k)),
    ):
        out.append("")
        out.append(f"  {metric}  (rows: method @ period; [{lo}, {hi}])")
        for c in cells:
            s = getter(c)
            out.append(
                f"  {c.method:9s} {c.period}  "
                + box_plot_row(s.minimum, s.q1, s.median, s.q3, s.maximum, lo, hi)
                + f"  med={s.median:.3f}"
            )
    out.append("")
    rows = [(c.method, c.period, format_si(c.moves)) for c in cells]
    out.append(ascii_table(["method", "period", "moves"], rows, title="  moves per period"))
    return "\n".join(out)


def median_table(cells: List[Fig4Cell]) -> Dict[Tuple[str, str], Dict[str, float]]:
    """(method, period) → {edge_cut, balance, moves} medians — the
    machine-checkable core of the figure, used by tests/EXPERIMENTS."""
    table: Dict[Tuple[str, str], Dict[str, float]] = {}
    for c in cells:
        table[(c.method, c.period)] = {
            "edge_cut": c.edge_cut.median,
            "balance": c.balance.median,
            "moves": float(c.moves),
        }
    return table
