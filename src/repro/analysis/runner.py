"""Shared experiment runner with workload and replay caching.

Experiments are pure functions of (scale, seed, method, k, window), so
the runner memoises them; Fig. 4 and Fig. 5 share most replays and the
benchmark suite reuses the figures' runs across rounds.

Method-comparison requests (:meth:`ExperimentRunner.replay_many` /
:meth:`~ExperimentRunner.replay_grid`) go through the single-pass
:class:`~repro.core.multireplay.MultiReplayEngine`: the interaction
log is streamed and the cumulative graph built exactly once for all
uncached (method, k) combinations, with results bit-identical to
independent :meth:`~ExperimentRunner.replay` calls.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.core.multireplay import MultiReplayEngine
from repro.core.registry import make_method
from repro.core.replay import ReplayEngine, ReplayResult
from repro.ethereum.workload import WorkloadConfig, WorkloadResult, generate_history
from repro.graph.snapshot import HOUR

#: Named workload scales; values are WorkloadConfig factory names.
SCALES = ("tiny", "small", "medium", "default")


def config_for_scale(scale: str, seed: int) -> WorkloadConfig:
    if scale == "tiny":
        return WorkloadConfig.tiny(seed)
    if scale == "small":
        return WorkloadConfig.small(seed)
    if scale == "medium":
        return WorkloadConfig.medium(seed)
    if scale == "default":
        return WorkloadConfig(seed=seed)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


class ExperimentRunner:
    """Memoising facade over workload generation and method replays."""

    def __init__(self, scale: str = "small", seed: int = 42, metric_window_hours: float = 24.0):
        self.scale = scale
        self.seed = seed
        self.metric_window = metric_window_hours * HOUR
        self._workload: Optional[WorkloadResult] = None
        self._replays: Dict[Tuple[str, int, int], ReplayResult] = {}

    @property
    def workload(self) -> WorkloadResult:
        if self._workload is None:
            self._workload = generate_history(config_for_scale(self.scale, self.seed))
        return self._workload

    def replay(self, method_name: str, k: int, seed: int = 1, **method_kwargs) -> ReplayResult:
        """Replay the workload through a method (cached).

        ``method_kwargs`` take part in the cache key implicitly by
        being rejected: parameterised method studies (the ablations)
        should construct methods and engines directly.
        """
        if method_kwargs:
            method = make_method(method_name, k, seed=seed, **method_kwargs)
            return ReplayEngine(
                self.workload.builder.log, method, metric_window=self.metric_window
            ).run()
        key = (method_name.lower(), k, seed)
        if key not in self._replays:
            method = make_method(method_name, k, seed=seed)
            self._replays[key] = ReplayEngine(
                self.workload.builder.log, method, metric_window=self.metric_window
            ).run()
        return self._replays[key]

    def replay_many(
        self, method_names: Sequence[str], k: int, seed: int = 1
    ) -> Dict[str, ReplayResult]:
        """Replay several methods at one shard count in a single pass.

        Uncached methods share one :class:`MultiReplayEngine` stream;
        cached results are reused.  Returns name → result.
        """
        self.replay_grid(method_names, (k,), seed=seed)
        return {m: self._replays[(m.lower(), k, seed)] for m in method_names}

    def replay_grid(
        self, method_names: Sequence[str], ks: Sequence[int], seed: int = 1
    ) -> Dict[Tuple[str, int], ReplayResult]:
        """Replay a (method × shard-count) grid in a single pass.

        All uncached combinations fan out of one shared log stream —
        methods with different ``k`` coexist in the same pass, so a
        Fig. 5-style sweep builds the cumulative graph once instead of
        |methods| × |ks| times.  Returns (name, k) → result.
        """
        wanted = list(dict.fromkeys((m, k) for m in method_names for k in ks))
        missing = [
            (m, k) for m, k in wanted if (m.lower(), k, seed) not in self._replays
        ]
        if missing:
            methods = [make_method(m, k, seed=seed) for m, k in missing]
            results = MultiReplayEngine(
                self.workload.builder.log, methods, metric_window=self.metric_window
            ).run()
            for (m, k), result in zip(missing, results):
                self._replays[(m.lower(), k, seed)] = result
        return {
            (m, k): self._replays[(m.lower(), k, seed)] for m, k in wanted
        }
