"""Shared experiment runner with workload and replay caching.

Experiments are pure functions of (scale, seed, method, k, window), so
the runner memoises them; Fig. 4 and Fig. 5 share most replays and the
benchmark suite reuses the figures' runs across rounds.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.core.registry import make_method
from repro.core.replay import ReplayEngine, ReplayResult
from repro.ethereum.workload import WorkloadConfig, WorkloadResult, generate_history
from repro.graph.snapshot import HOUR

#: Named workload scales; values are WorkloadConfig factory names.
SCALES = ("tiny", "small", "medium", "default")


def config_for_scale(scale: str, seed: int) -> WorkloadConfig:
    if scale == "tiny":
        return WorkloadConfig.tiny(seed)
    if scale == "small":
        return WorkloadConfig.small(seed)
    if scale == "medium":
        return WorkloadConfig.medium(seed)
    if scale == "default":
        return WorkloadConfig(seed=seed)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


class ExperimentRunner:
    """Memoising facade over workload generation and method replays."""

    def __init__(self, scale: str = "small", seed: int = 42, metric_window_hours: float = 24.0):
        self.scale = scale
        self.seed = seed
        self.metric_window = metric_window_hours * HOUR
        self._workload: Optional[WorkloadResult] = None
        self._replays: Dict[Tuple[str, int, int], ReplayResult] = {}

    @property
    def workload(self) -> WorkloadResult:
        if self._workload is None:
            self._workload = generate_history(config_for_scale(self.scale, self.seed))
        return self._workload

    def replay(self, method_name: str, k: int, seed: int = 1, **method_kwargs) -> ReplayResult:
        """Replay the workload through a method (cached).

        ``method_kwargs`` take part in the cache key implicitly by
        being rejected: parameterised method studies (the ablations)
        should construct methods and engines directly.
        """
        if method_kwargs:
            method = make_method(method_name, k, seed=seed, **method_kwargs)
            return ReplayEngine(
                self.workload.builder.log, method, metric_window=self.metric_window
            ).run()
        key = (method_name.lower(), k, seed)
        if key not in self._replays:
            method = make_method(method_name, k, seed=seed)
            self._replays[key] = ReplayEngine(
                self.workload.builder.log, method, metric_window=self.metric_window
            ).run()
        return self._replays[key]
