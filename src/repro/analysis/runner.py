"""Back-compat experiment facade over :mod:`repro.experiments`.

:class:`ExperimentRunner` keeps the call-style API the figures,
benchmarks and tests grew up with (``replay`` / ``replay_many`` /
``replay_grid``), but is now a thin memoising facade over the
declarative pipeline: every request becomes an
:class:`~repro.experiments.spec.ExperimentSpec` and executes through
:func:`~repro.experiments.run.run_experiment`, so the runner, the CLI
and standalone specs share one execution path (single-pass shared
streaming, optional process-pool fan-out, optional on-disk resume).

Parameterised replays are first-class now: ``method_kwargs`` become
part of the :class:`~repro.experiments.spec.MethodSpec` cache key, so
``replay("tr-metis", 2, cut_threshold=0.25)`` is memoised exactly like
the plain methods (the old behaviour silently bypassed the cache).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.replay import ReplayResult
from repro.ethereum.workload import WorkloadResult, generate_history
from repro.experiments.results import CellResult, ResultSet
from repro.experiments.run import run_experiment
from repro.experiments.source import SourceLike, TraceSource, as_log_source
from repro.experiments.spec import (  # re-exported for back-compat
    SCALES,
    CellKey,
    ExecutionSpec,
    ExperimentSpec,
    MethodSpec,
    config_for_scale,
)
from repro.experiments.store import ResultStore
from repro.graph.snapshot import HOUR

__all__ = ["SCALES", "config_for_scale", "ExperimentRunner"]

MethodLike = Union[str, MethodSpec]


class ExperimentRunner:
    """Memoising facade over workload generation and method replays."""

    def __init__(
        self,
        scale: str = "small",
        seed: int = 42,
        metric_window_hours: float = 24.0,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        source: Optional[SourceLike] = None,
        execution: Union[str, ExecutionSpec, None] = None,
    ):
        """Args:
            jobs: worker processes for uncached grid cells (1 =
                in-process single-pass streaming; the default keeps
                full ReplayResults available to :meth:`replay`).
            store: optional on-disk :class:`ResultStore` so replays
                resume across runner instances and processes.
            source: replay a trace file (path or
                :class:`~repro.experiments.source.TraceSource`)
                instead of the synthetic ``scale``/``seed`` workload.
                Trace-backed runners have a :attr:`log` but no
                :attr:`workload` (there is no chain/state behind a
                trace), so figure drivers needing the substrate
                (fig1/fig2) require a synthetic runner.
            execution: optional :class:`ExecutionSpec` (or its string
                form, e.g. ``"mode=migrate"``); every spec this runner
                builds carries it, so cells gain throughput/latency
                reports from the sharded executor.
        """
        self.scale = scale
        self.seed = seed
        self.metric_window = metric_window_hours * HOUR
        self.jobs = jobs
        self.store = store
        self.source: Optional[TraceSource] = None
        if source is not None:
            source = as_log_source(source)
            if not isinstance(source, TraceSource):
                raise ValueError(
                    "runner source= takes a trace; spell synthetic "
                    "workloads through scale=/seed="
                )
            self.source = source
        self.execution: Optional[ExecutionSpec] = (
            ExecutionSpec.parse(execution) if execution is not None else None
        )
        self._workload: Optional[WorkloadResult] = None
        self._log = None
        self._cells: Dict[CellKey, CellResult] = {}
        self._replays: Dict[CellKey, ReplayResult] = {}

    @property
    def window_hours(self) -> float:
        return self.metric_window / HOUR

    @property
    def workload(self) -> WorkloadResult:
        if self.source is not None:
            raise ValueError(
                f"runner replays trace {self.source.path!r}; there is no "
                "synthetic workload (chain/state) behind it — use .log"
            )
        if self._workload is None:
            self._workload = generate_history(config_for_scale(self.scale, self.seed))
        return self._workload

    @property
    def log(self):
        """The interaction log replays stream (memoised).

        For trace-backed runners this opens the trace once (an O(1)
        mmap for binary rctrace files); otherwise it is the synthetic
        workload's boxed log.  A preloaded
        :class:`~repro.graph.columnar.ColumnarLog` can be injected by
        assigning ``runner._log`` (mirrors ``runner._workload``).
        """
        if self._log is None:
            if self.source is not None:
                self._log = self.source.load()
            else:
                self._log = self.workload.builder.log
        return self._log

    # -- declarative surface -------------------------------------------

    def spec(
        self,
        methods: Sequence[MethodLike],
        ks: Sequence[int],
        seeds: Sequence[int] = (1,),
    ) -> ExperimentSpec:
        """An :class:`ExperimentSpec` bound to this runner's workload."""
        return ExperimentSpec(
            scale=self.scale,
            workload_seed=self.seed,
            methods=tuple(methods),
            ks=tuple(ks),
            window_hours=self.window_hours,
            replay_seeds=tuple(seeds),
            source=self.source,
            execution=self.execution,
        )

    def run(self, spec: ExperimentSpec) -> ResultSet:
        """Execute a spec through the runner's memo.

        The spec must match the runner's workload identity (scale,
        seed, window) — the memoised cells are only valid for it.
        """
        own = self.spec(spec.methods, spec.ks, spec.replay_seeds)
        if spec != own:
            raise ValueError(
                f"spec workload {spec.workload_id()!r} does not match this "
                f"runner's {own.workload_id()!r}; use run_experiment() directly"
            )
        missing = [key for key in spec.cells() if key not in self._cells]
        if missing:
            # lazy handles: a fully-store-resumed run neither generates
            # the workload nor opens the trace; the memos still kick in
            # when a cell actually replays.  A trace-backed runner with
            # jobs>1 passes nothing at all — run_experiment hands the
            # spec's TraceSource to the workers, which mmap it
            # themselves (an mmap-backed log must not cross processes).
            if self.source is not None:
                handles = {} if self.jobs > 1 else {"log": lambda: self.log}
            else:
                handles = {"workload": lambda: self.workload}
            rs = run_experiment(
                spec,
                jobs=self.jobs,
                store=self.store,
                only=missing,
                **handles,
            )
            for key in missing:
                self._cells[key] = rs.cell(key)
                replay = rs.replay(key)
                if replay is not None:
                    self._replays[key] = replay
        out = ResultSet(spec, {key: self._cells[key] for key in spec.cells()})
        out._live = {
            key: self._replays[key] for key in spec.cells() if key in self._replays
        }
        return out

    def results_for(
        self,
        methods: Sequence[MethodLike],
        ks: Sequence[int],
        seed: int = 1,
    ) -> ResultSet:
        """Grid results as a :class:`ResultSet` (the figures' entry)."""
        return self.run(self.spec(methods, ks, (seed,)))

    # -- legacy call-style surface -------------------------------------

    def _cell_key(self, method: MethodLike, k: int, seed: int, **kwargs) -> CellKey:
        spec = MethodSpec.parse(method)
        if kwargs:
            spec = MethodSpec(spec.name, spec.params + tuple(kwargs.items()))
        return CellKey(method=spec, k=k, seed=seed)

    def replay(
        self, method_name: MethodLike, k: int, seed: int = 1, **method_kwargs
    ) -> ReplayResult:
        """Replay the workload through a method (cached).

        ``method_kwargs`` are part of the cache key (via the method's
        :class:`MethodSpec`), so parameterised replays are memoised
        like everything else.  Returns the full legacy
        :class:`ReplayResult`; its ``graph`` is the shared cumulative
        graph when the cell was computed in-process, else ``None``
        (cells loaded from a store or computed by worker processes).
        """
        key = self._cell_key(method_name, k, seed, **method_kwargs)
        if key not in self._replays:
            self.run(self.spec((key.method,), (k,), (seed,)))
            if key not in self._replays:
                # loaded from the store / a worker: rebuild (no graph)
                self._replays[key] = self._cells[key].to_replay_result()
        return self._replays[key]

    def replay_many(
        self, method_names: Sequence[MethodLike], k: int, seed: int = 1
    ) -> Dict[str, ReplayResult]:
        """Replay several methods at one shard count in a single pass.

        Uncached methods share one engine stream; returns name → result
        keyed by the names as given.
        """
        grid = self.replay_grid(method_names, (k,), seed=seed)
        return {m: grid[(m, k)] for m in method_names}

    def replay_grid(
        self, method_names: Sequence[MethodLike], ks: Sequence[int], seed: int = 1
    ) -> Dict[Tuple[MethodLike, int], ReplayResult]:
        """Replay a (method × shard-count) grid in a single pass.

        All uncached combinations fan out of one shared log stream (or
        a process pool when the runner was built with ``jobs > 1``).
        Returns (name, k) → result, keyed by the names as given.
        """
        self.run(self.spec(tuple(method_names), tuple(ks), (seed,)))
        out: Dict[Tuple[MethodLike, int], ReplayResult] = {}
        for name in method_names:
            for k in ks:
                key = self._cell_key(name, k, seed)
                if key not in self._replays:
                    self._replays[key] = self._cells[key].to_replay_result()
                out[(name, k)] = self._replays[key]
        return out
