"""Command-line entry point: figures and declarative sweeps.

Installed as ``repro-experiments``::

    repro-experiments fig3 --scale small --seed 42
    repro-experiments all  --scale tiny
    repro-experiments sweep --methods hash,metis,"tr-metis?warm=true" \
        --grid 2,4,8 --jobs 4 --store results/ --out sweep.json
    repro-experiments --list-methods

``sweep`` runs an :class:`~repro.experiments.spec.ExperimentSpec`
built from ``--methods`` (comma-separated method strings, parameters
in query form) × ``--grid`` (shard counts), fanning uncached cells
over ``--jobs`` processes; ``--store DIR`` makes the sweep resumable
and ``--out FILE`` serializes the
:class:`~repro.experiments.results.ResultSet` as JSON.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.runner import SCALES, ExperimentRunner
from repro.experiments import ResultStore
from repro.core.registry import PAPER_ORDER, available_methods, method_params

FIGURES = ["fig1", "fig2", "fig3", "fig4", "fig5", "pitfall"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from 'Challenges and Pitfalls of "
        "Partitioning Blockchains' (DSN 2018) on a synthetic trace, or "
        "run declarative method sweeps.",
    )
    parser.add_argument(
        "command",
        nargs="?",
        choices=FIGURES + ["all", "sweep"],
        help="which artifact to regenerate, or 'sweep' for a custom grid",
    )
    parser.add_argument("--scale", default="small", choices=SCALES,
                        help="workload scale (default: small)")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument("--source", default=None, metavar="TRACE",
                        help="replay a trace file (text v1 or binary "
                        "rctrace v2) instead of the synthetic workload; "
                        "binary traces mmap per worker (see repro-trace "
                        "export --format binary)")
    parser.add_argument("--k", type=int, default=None,
                        help="shard count override (fig4/pitfall)")
    parser.add_argument("--window-hours", type=float, default=24.0,
                        help="metric window width in hours (paper: 4)")
    parser.add_argument("--methods", default=None,
                        help="comma-separated method strings for 'sweep' "
                        "(e.g. hash,metis,tr-metis?warm=true); default: "
                        "the paper's five methods")
    parser.add_argument("--grid", default=None,
                        help="comma-separated shard counts for 'sweep' "
                        "(default: 2,4,8)")
    parser.add_argument("--execution", default=None, metavar="SPEC",
                        help="attach sharded-execution metrics to every "
                        "sweep cell: a mode (2pc, migrate) or "
                        "field=value pairs joined with '&' (e.g. "
                        "\"mode=migrate&arrival_rate=2000\"); see "
                        "docs/execution.md")
    parser.add_argument("--replay-seed", type=int, default=1,
                        help="method/replay seed (default: 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for uncached grid cells")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory (sweeps resume from it)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the sweep's ResultSet as JSON")
    parser.add_argument("--list-methods", action="store_true",
                        help="list available methods and their parameters")
    args = parser.parse_args(argv)

    if args.list_methods:
        return _list_methods()
    if args.command is None:
        parser.error("a command is required (or use --list-methods)")

    if args.source and args.command in ("fig1", "fig2", "all"):
        parser.error(
            f"{args.command} needs the synthetic substrate (chain/state); "
            "--source only applies to replay-driven commands "
            "(sweep, fig3, fig4, fig5, pitfall)"
        )
    if args.execution and args.command != "sweep":
        parser.error("--execution only applies to 'sweep'")
    runner = ExperimentRunner(
        scale=args.scale,
        seed=args.seed,
        metric_window_hours=args.window_hours,
        jobs=args.jobs,
        store=ResultStore(args.store) if args.store else None,
        source=args.source,
        execution=args.execution,
    )
    start = time.time()
    if args.command == "sweep":
        _run_sweep(runner, args)
    else:
        wanted = FIGURES if args.command == "all" else [args.command]
        for name in wanted:
            _run_one(name, runner, args)
            print()
    origin = (
        f"source={args.source}" if args.source
        else f"scale={args.scale}, seed={args.seed}"
    )
    print(f"[done in {time.time() - start:.1f}s, {origin}]")
    return 0


def _list_methods() -> int:
    for name in available_methods():
        params = method_params(name)
        suffix = f"  ({', '.join(params)})" if params else ""
        print(f"{name}{suffix}")
    print(
        "\nparameterise with query syntax, e.g. "
        "\"tr-metis?warm=true&cut_threshold=0.3\""
    )
    return 0


def _run_sweep(runner: ExperimentRunner, args) -> None:
    from repro.analysis.render import ascii_table, format_si

    methods = (
        [m for m in args.methods.split(",") if m]
        if args.methods
        else list(PAPER_ORDER)
    )
    ks = (
        [int(k) for k in args.grid.split(",") if k]
        if args.grid
        else [2, 4, 8]
    )
    spec = runner.spec(methods, ks, (args.replay_seed,))
    print(f"sweep: {len(spec.cells())} cells "
          f"({len(spec.methods)} methods x {len(spec.ks)} shard counts), "
          f"jobs={args.jobs}, workload={spec.workload_id()}")
    rs = runner.run(spec)
    rows = [
        (
            cell.method,
            cell.k,
            f"{cell.mean('dynamic_edge_cut'):.3f}",
            f"{cell.mean('dynamic_balance'):.3f}",
            format_si(cell.total_moves),
            cell.num_repartitions,
        )
        for cell in rs
    ]
    print(ascii_table(
        ["method", "k", "dyn edge-cut", "dyn balance", "moves", "repartitions"],
        rows,
        title="sweep results (means over active windows)",
    ))
    if spec.execution is not None:
        from repro.analysis.execution import (
            compute_execution,
            render_execution,
            render_throughput_vs_k,
        )

        exec_rows = compute_execution(rs)
        print()
        print(render_execution(exec_rows, mode=spec.execution.mode))
        print()
        print(render_throughput_vs_k(exec_rows))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rs.dumps())
        print(f"[resultset: {args.out}]")


def _run_one(name: str, runner: ExperimentRunner, args) -> None:
    if name == "fig1":
        from repro.analysis.fig1 import compute_fig1, render_fig1

        print(render_fig1(compute_fig1(runner.workload)))
    elif name == "fig2":
        from repro.analysis.fig2 import compute_fig2, render_fig2

        report = compute_fig2(runner.workload)
        print(render_fig2(report) if report else "fig2: no early contract found")
    elif name == "fig3":
        from repro.analysis.fig3 import compute_fig3, render_fig3

        print(render_fig3(compute_fig3(runner)))
    elif name == "fig4":
        from repro.analysis.fig4 import compute_fig4, render_fig4

        for k in ((args.k,) if args.k else (2, 8)):
            print(render_fig4(compute_fig4(runner, k)))
            print()
    elif name == "fig5":
        from repro.analysis.fig5 import compute_fig5, render_fig5

        print(render_fig5(compute_fig5(runner)))
    elif name == "pitfall":
        from repro.analysis.pitfall import compute_pitfall, render_pitfall

        print(render_pitfall(compute_pitfall(runner, k=args.k or 8)))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)


if __name__ == "__main__":
    sys.exit(main())
