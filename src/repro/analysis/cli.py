"""Command-line entry point: regenerate any figure from the paper.

Installed as ``repro-experiments``::

    repro-experiments fig3 --scale small --seed 42
    repro-experiments all  --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.runner import SCALES, ExperimentRunner


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from 'Challenges and Pitfalls of "
        "Partitioning Blockchains' (DSN 2018) on a synthetic trace.",
    )
    parser.add_argument(
        "figure",
        choices=["fig1", "fig2", "fig3", "fig4", "fig5", "pitfall", "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument("--scale", default="small", choices=SCALES,
                        help="workload scale (default: small)")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument("--k", type=int, default=None,
                        help="shard count override (fig4/pitfall)")
    parser.add_argument("--window-hours", type=float, default=24.0,
                        help="metric window width in hours (paper: 4)")
    args = parser.parse_args(argv)

    runner = ExperimentRunner(
        scale=args.scale, seed=args.seed, metric_window_hours=args.window_hours
    )
    start = time.time()
    wanted = (
        ["fig1", "fig2", "fig3", "fig4", "fig5", "pitfall"]
        if args.figure == "all"
        else [args.figure]
    )
    for name in wanted:
        _run_one(name, runner, args)
        print()
    print(f"[done in {time.time() - start:.1f}s, scale={args.scale}, seed={args.seed}]")
    return 0


def _run_one(name: str, runner: ExperimentRunner, args) -> None:
    if name == "fig1":
        from repro.analysis.fig1 import compute_fig1, render_fig1

        print(render_fig1(compute_fig1(runner.workload)))
    elif name == "fig2":
        from repro.analysis.fig2 import compute_fig2, render_fig2

        report = compute_fig2(runner.workload)
        print(render_fig2(report) if report else "fig2: no early contract found")
    elif name == "fig3":
        from repro.analysis.fig3 import compute_fig3, render_fig3

        print(render_fig3(compute_fig3(runner)))
    elif name == "fig4":
        from repro.analysis.fig4 import compute_fig4, render_fig4

        for k in ((args.k,) if args.k else (2, 8)):
            print(render_fig4(compute_fig4(runner, k)))
            print()
    elif name == "fig5":
        from repro.analysis.fig5 import compute_fig5, render_fig5

        print(render_fig5(compute_fig5(runner)))
    elif name == "pitfall":
        from repro.analysis.pitfall import compute_pitfall, render_pitfall

        print(render_pitfall(compute_pitfall(runner, k=args.k or 8)))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)


if __name__ == "__main__":
    sys.exit(main())
