"""EXT-PITFALL — throughput versus partition quality (extension).

The paper *argues* (§I) that bad partitioning makes a sharded system
slower than an unsharded one; this experiment measures it.  The same
transaction stream is executed by the sharded DES under each method's
final assignment (plus a random-assignment strawman and the k = 1
baseline) at saturating offered load, so achieved throughput reflects
each partitioning's multi-shard overhead and load imbalance.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.render import ascii_table
from repro.analysis.runner import ExperimentRunner
from repro.core.registry import PAPER_ORDER
from repro.sharding.coordinator import ShardedExecution, ShardedExecutionConfig


@dataclasses.dataclass(frozen=True)
class PitfallRow:
    method: str
    k: int
    throughput: float
    speedup_vs_single: float
    multi_shard_ratio: float
    p99_latency: float
    utilization_imbalance: float


def compute_pitfall(
    runner: ExperimentRunner,
    k: int = 8,
    methods: Tuple[str, ...] = tuple(PAPER_ORDER),
    seed: int = 1,
    config: Optional[ShardedExecutionConfig] = None,
    max_interactions: int = 20_000,
) -> List[PitfallRow]:
    """Throughput table for each method's final assignment at shard
    count ``k``, normalised to the single-shard baseline."""
    cfg = config or ShardedExecutionConfig()
    log = runner.log   # synthetic or trace-backed; same replay surface
    if len(log) > max_interactions:
        log = log[-max_interactions:]

    # offered load: saturate the system so completed/elapsed = capacity
    rate = 3.0 * k / cfg.service_time

    # all real method assignments come from one declarative grid run
    # ("random" is this experiment's strawman, not a registry method)
    rs = runner.results_for([m for m in methods if m != "random"], (k,), seed=seed)

    # k = 1 baseline: everything is local
    single = ShardedExecution(1, _constant_assignment(runner, 0), cfg)
    base = single.replay(log, arrival_rate=3.0 / cfg.service_time)

    rows: List[PitfallRow] = [
        PitfallRow(
            method="single-shard",
            k=1,
            throughput=base.throughput,
            speedup_vs_single=1.0,
            multi_shard_ratio=0.0,
            p99_latency=base.latency.p99,
            utilization_imbalance=base.utilization_imbalance,
        )
    ]

    for method in methods + ("random",):
        if method == "random":
            rng = random.Random(seed)
            assignment = {
                v: rng.randrange(k) for v in _vertex_universe(runner)
            }
        else:
            assignment = dict(rs.get(method, k, seed).assignment)
        ex = ShardedExecution(k, assignment, cfg)
        rep = ex.replay(log, arrival_rate=rate)
        rows.append(
            PitfallRow(
                method=method,
                k=k,
                throughput=rep.throughput,
                speedup_vs_single=rep.throughput / base.throughput if base.throughput else 0.0,
                multi_shard_ratio=rep.multi_shard_ratio,
                p99_latency=rep.latency.p99,
                utilization_imbalance=rep.utilization_imbalance,
            )
        )
    return rows


def _vertex_universe(runner: ExperimentRunner) -> List[int]:
    """Every vertex id of the replayed history.

    Synthetic runners read the workload graph (first-insertion order —
    unchanged, so seeded random assignments stay reproducible);
    trace-backed runners read the log's interned vertex table.
    """
    if runner.source is None:
        return list(runner.workload.graph.vertices())
    return list(runner.log.vertex_ids())


def _constant_assignment(runner: ExperimentRunner, shard: int) -> Dict[int, int]:
    return {v: shard for v in _vertex_universe(runner)}


def render_pitfall(rows: List[PitfallRow]) -> str:
    table_rows = [
        (
            r.method,
            r.k,
            f"{r.throughput:.0f}",
            f"{r.speedup_vs_single:.2f}x",
            f"{r.multi_shard_ratio:.2f}",
            f"{r.p99_latency * 1000:.1f}ms",
            f"{r.utilization_imbalance:.2f}",
        )
        for r in rows
    ]
    return ascii_table(
        ["method", "k", "tx/s", "speedup", "multi-shard", "p99", "util imbalance"],
        table_rows,
        title="EXT-PITFALL — throughput under each method's partitioning",
    )
