"""Execution-axis analysis: what a cut *costs* under sharded execution.

Consumes a :class:`~repro.experiments.results.ResultSet` produced from
an execution-enabled :class:`~repro.experiments.spec.ExperimentSpec`
(every cell carries a throughput report) and renders the paper's
missing figure: committed-transaction throughput versus shard count per
partitioner, alongside the partition-quality metric (dynamic edge cut)
that supposedly predicts it — 2PC and state-migration modes side by
side when both were swept.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.analysis.render import ascii_table, format_si
from repro.experiments.results import ResultSet


@dataclasses.dataclass(frozen=True)
class ExecutionRow:
    """One cell's execution outcome, joined with its cut quality."""

    method: str
    k: int
    seed: int
    edge_cut: float            # mean dynamic edge cut (the predictor)
    throughput: float          # committed tx/s (the outcome)
    p50_latency: float
    p99_latency: float
    multi_shard_ratio: float
    utilization_imbalance: float
    migrations: int
    migration_bytes: int
    unassigned_endpoints: int


def compute_execution(rs: ResultSet) -> List[ExecutionRow]:
    """Rows for every cell, in grid order.

    Raises ``ValueError`` when a cell has no execution report — the
    sweep was run without an ``ExecutionSpec``.
    """
    rows: List[ExecutionRow] = []
    for cell in rs:
        rep = cell.execution
        if rep is None:
            raise ValueError(
                f"cell {cell.key.label} has no execution report; run the "
                "sweep with an ExecutionSpec (CLI: --execution mode=2pc)"
            )
        rows.append(ExecutionRow(
            method=cell.method,
            k=cell.k,
            seed=cell.seed,
            edge_cut=cell.mean("dynamic_edge_cut"),
            throughput=rep.throughput,
            p50_latency=rep.latency.median,
            p99_latency=rep.latency.p99,
            multi_shard_ratio=rep.multi_shard_ratio,
            utilization_imbalance=rep.utilization_imbalance,
            migrations=rep.migrations,
            migration_bytes=rep.migration_bytes,
            unassigned_endpoints=rep.unassigned_endpoints,
        ))
    return rows


def render_execution(rows: Sequence[ExecutionRow], mode: str = "2pc") -> str:
    """The execution table: cut quality next to its execution cost."""
    body = [
        (
            r.method,
            r.k,
            f"{r.edge_cut:.3f}",
            format_si(r.throughput),
            f"{r.p50_latency * 1e3:.2f}",
            f"{r.p99_latency * 1e3:.2f}",
            f"{r.multi_shard_ratio * 100:.1f}%",
            f"{r.utilization_imbalance:.2f}",
            format_si(r.migrations),
        )
        for r in rows
    ]
    return ascii_table(
        ["method", "k", "edge-cut", "tx/s", "p50 ms", "p99 ms",
         "multi-shard", "util max/mean", "moves"],
        body,
        title=f"sharded execution ({mode}): partition quality vs throughput",
    )


def render_throughput_vs_k(rows: Sequence[ExecutionRow]) -> str:
    """The figure: throughput vs. shard count, one line per partitioner.

    Bars are normalised to the best cell in the set, so the relative
    cost of a worse cut is visible at a glance.
    """
    ks = sorted({r.k for r in rows})
    methods = list(dict.fromkeys(r.method for r in rows))  # grid order
    by_cell = {(r.method, r.k): r for r in rows}
    best = max((r.throughput for r in rows), default=0.0)
    width = 24

    lines = ["throughput vs shard count (tx/s; bar = fraction of best)"]
    header = "method".ljust(14) + "".join(f"k={k}".rjust(11) for k in ks)
    lines.append(header)
    for method in methods:
        cells = "".join(
            format_si(by_cell[(method, k)].throughput).rjust(11)
            if (method, k) in by_cell else " " * 11
            for k in ks
        )
        lines.append(method[:14].ljust(14) + cells)
        for k in ks:
            r = by_cell.get((method, k))
            if r is None:
                continue
            frac = r.throughput / best if best > 0 else 0.0
            bar = "#" * max(1, int(round(frac * width)))
            lines.append(f"    k={k:<4} {bar} {format_si(r.throughput)}")
    return "\n".join(lines)
