"""Figure/table regeneration: one module per paper artifact.

Each ``fig*.py`` exposes a ``compute_*`` function returning structured
data (rows/series) and a ``render_*`` function producing the ASCII
rendition printed by the benchmarks and the CLI.  ``runner`` caches
workloads and replays so that figures sharing runs (Fig. 4 and Fig. 5)
do not recompute them.
"""

from repro.analysis.runner import ExperimentRunner

__all__ = ["ExperimentRunner"]
