"""Fig. 3 — hashing vs METIS time series with two shards.

The paper's Fig. 3 plots, over the full history with k = 2, the static
and dynamic edge-cut (top) and balance (bottom) per 4-hour window, with
vertical lines at METIS's two-week repartitionings.  Expected shapes:

* hashing: static balance ≈ 1 (uniform hashing), static edge-cut ≈ 0.5,
  dynamic balance noisier than static;
* METIS: much lower edge-cut than hashing, at the cost of dynamic
  balance drifting toward 2 after the attack (one shard holds the live
  vertices, the other the dummies).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.analysis.render import sparkline
from repro.analysis.runner import ExperimentRunner
from repro.ethereum.history import ATTACK_END, month_label
from repro.experiments.results import CellResult


@dataclasses.dataclass
class Fig3Data:
    hashing: CellResult
    metis: CellResult

    def summary(self) -> Dict[str, float]:
        def mean(series, col):
            pts = [p for p in series.points if p.interactions > 0]
            return sum(getattr(p, col) for p in pts) / len(pts) if pts else 0.0

        def post_attack_mean(series, col):
            pts = [
                p for p in series.points if p.interactions > 0 and p.ts > ATTACK_END
            ]
            return sum(getattr(p, col) for p in pts) / len(pts) if pts else 0.0

        return {
            "hash_static_cut": mean(self.hashing.series, "static_edge_cut"),
            "hash_dynamic_cut": mean(self.hashing.series, "dynamic_edge_cut"),
            "hash_static_balance": mean(self.hashing.series, "static_balance"),
            "hash_moves": float(self.hashing.total_moves),
            "metis_static_cut": mean(self.metis.series, "static_edge_cut"),
            "metis_dynamic_cut": mean(self.metis.series, "dynamic_edge_cut"),
            "metis_post_attack_dyn_balance": post_attack_mean(
                self.metis.series, "dynamic_balance"
            ),
            "metis_moves": float(self.metis.total_moves),
            "metis_repartitions": float(len(self.metis.events)),
        }


def compute_fig3(runner: ExperimentRunner, seed: int = 1) -> Fig3Data:
    # both methods replay off one shared log stream (single-pass engine)
    rs = runner.results_for(("hash", "metis"), (2,), seed=seed)
    return Fig3Data(hashing=rs.get("hash", 2, seed), metis=rs.get("metis", 2, seed))


def render_fig3(data: Fig3Data) -> str:
    out: List[str] = ["Fig. 3 — hashing vs METIS, k = 2 (per-window series)"]
    for label, result in (("(a) Hashing", data.hashing), ("(b) METIS", data.metis)):
        s = result.series
        pts = [p for p in s.points if p.interactions > 0]
        out += [
            "",
            f"{label}: {len(s.points)} windows, {len(result.events)} repartitions, "
            f"{result.total_moves} moves",
            "  dynamic edge-cut : " + sparkline([p.dynamic_edge_cut for p in pts]),
            "  static  edge-cut : " + sparkline([p.static_edge_cut for p in pts]),
            "  dynamic balance  : " + sparkline([p.dynamic_balance for p in pts]),
            "  static  balance  : " + sparkline([p.static_balance for p in pts]),
        ]
    summary = data.summary()
    out += [""] + [f"  {k} = {v:.3f}" for k, v in summary.items()]
    return "\n".join(out)
