"""Fig. 2 — a concrete subgraph around an early hub contract.

The paper's Fig. 2 shows accounts (full-line nodes), contracts
(dashed-line nodes) and weighted interaction edges from a September
2015 slice.  We reproduce the *construction*: build the early graph,
find a contract hub with both incoming activations and outgoing
transfers, extract its radius-2 ego subgraph and render it as an
adjacency listing with edge weights.

Also checked here: the paper's structural observation that "in the
complete graph, there is no contract without at least one incoming
edge" (every contract was activated or created by someone).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.ethereum.history import date_to_ts
from repro.ethereum.workload import WorkloadResult
from repro.graph.builder import build_graph
from repro.graph.digraph import VertexKind, WeightedDiGraph


@dataclasses.dataclass(frozen=True)
class SubgraphReport:
    center: int
    graph: WeightedDiGraph
    num_accounts: int
    num_contracts: int
    contracts_without_incoming: int


def compute_fig2(
    workload: WorkloadResult,
    cutoff_ts: Optional[float] = None,
    radius: int = 2,
) -> Optional[SubgraphReport]:
    """Ego subgraph around the busiest early contract (None if no
    contract exists before the cutoff)."""
    import datetime

    if cutoff_ts is None:
        cutoff_ts = date_to_ts(datetime.date(2015, 10, 1))
    early = build_graph(
        workload.builder.interactions_between(float("-inf"), cutoff_ts)
    )
    hub = None
    best = -1
    for v in early.vertices():
        if early.vertex_kind(v) is VertexKind.CONTRACT:
            score = early.in_degree(v) + early.out_degree(v)
            if score > best:
                best = score
                hub = v
    if hub is None:
        return None
    ego = early.ego_subgraph(hub, radius=radius)
    contracts = [v for v in ego.vertices() if ego.vertex_kind(v) is VertexKind.CONTRACT]
    orphans = sum(1 for c in contracts if ego.in_degree(c) == 0 and c != hub)
    return SubgraphReport(
        center=hub,
        graph=ego,
        num_accounts=ego.count_kind(VertexKind.ACCOUNT),
        num_contracts=len(contracts),
        contracts_without_incoming=orphans,
    )


def contracts_without_incoming(graph: WeightedDiGraph) -> int:
    """Count contracts with no incoming edge in the *full* graph (the
    paper asserts zero)."""
    return sum(
        1
        for v in graph.vertices()
        if graph.vertex_kind(v) is VertexKind.CONTRACT and graph.in_degree(v) == 0
    )


def render_fig2(report: SubgraphReport, max_edges: int = 40) -> str:
    g = report.graph
    lines = [
        f"Fig. 2 — ego subgraph around contract {report.center} "
        f"(radius 2, {g.num_vertices} vertices, {g.num_edges} edges)",
        f"accounts={report.num_accounts} contracts={report.num_contracts}",
        "",
    ]
    shown = 0
    for src, dst, w in sorted(g.edges(), key=lambda e: (-e[2], e[0], e[1])):
        src_k = "C" if g.vertex_kind(src) is VertexKind.CONTRACT else "A"
        dst_k = "C" if g.vertex_kind(dst) is VertexKind.CONTRACT else "A"
        lines.append(f"  {src_k}{src} -> {dst_k}{dst}  x{w}")
        shown += 1
        if shown >= max_edges:
            lines.append(f"  ... ({g.num_edges - shown} more edges)")
            break
    return "\n".join(lines)
