"""Fig. 1 — Ethereum graph evolution (vertices and edges over time).

The paper plots the cumulative number of vertices (accounts + smart
contracts) and edges (distinct interactions) per month from Aug 2015 to
Dec 2017 on a log axis, with fork landmarks.  Expected reproduced
shape: exponential growth to the attack, an order-of-magnitude jump in
the attack window, superlinear growth afterwards.
"""

from __future__ import annotations

import dataclasses
from typing import List, Set, Tuple

from repro.analysis.render import ascii_table, sparkline
from repro.ethereum.history import ATTACK_END, ATTACK_START, landmarks, month_label
from repro.ethereum.workload import WorkloadResult
from repro.graph.snapshot import DAY


@dataclasses.dataclass(frozen=True)
class GrowthPoint:
    ts: float
    label: str
    vertices: int
    edges: int
    interactions: int


def compute_fig1(workload: WorkloadResult, sample_days: float = 30.0) -> List[GrowthPoint]:
    """Cumulative graph size sampled every ``sample_days``."""
    log = workload.builder.log
    if not log:
        return []
    points: List[GrowthPoint] = []
    seen_vertices: Set[int] = set()
    seen_edges: Set[Tuple[int, int]] = set()
    interactions = 0

    next_sample = log[0].timestamp + sample_days * DAY
    for it in log:
        while it.timestamp >= next_sample:
            points.append(
                GrowthPoint(
                    ts=next_sample,
                    label=month_label(next_sample),
                    vertices=len(seen_vertices),
                    edges=len(seen_edges),
                    interactions=interactions,
                )
            )
            next_sample += sample_days * DAY
        seen_vertices.add(it.src)
        seen_vertices.add(it.dst)
        seen_edges.add((it.src, it.dst))
        interactions += 1
    points.append(
        GrowthPoint(
            ts=next_sample,
            label=month_label(next_sample),
            vertices=len(seen_vertices),
            edges=len(seen_edges),
            interactions=interactions,
        )
    )
    return points


def attack_growth_factor(points: List[GrowthPoint]) -> float:
    """Vertex growth factor across the attack window (paper: ~10x)."""
    before = after = None
    for p in points:
        if p.ts <= ATTACK_START:
            before = p
        if after is None and p.ts >= ATTACK_END:
            after = p
    if before is None or after is None or before.vertices == 0:
        return float("nan")
    return after.vertices / before.vertices


def render_fig1(points: List[GrowthPoint]) -> str:
    rows = [
        (p.label, p.vertices, p.edges, p.interactions) for p in points
    ]
    out = [
        ascii_table(
            ["month", "# vertices", "# edges", "# interactions"],
            rows,
            title="Fig. 1 — Ethereum graph evolution (synthetic trace)",
        ),
        "",
        "vertices (log): " + sparkline([p.vertices for p in points], log=True),
        "edges    (log): " + sparkline([p.edges for p in points], log=True),
        "",
        f"attack-window vertex growth factor: {attack_growth_factor(points):.1f}x",
        "landmarks: " + ", ".join(l.label for l in landmarks()),
    ]
    return "\n".join(out)
