"""repro.experiments — the declarative experiment API.

Describe a comparison grid as data (:class:`ExperimentSpec` over
:class:`MethodSpec` method identities), execute it with
:func:`run_experiment` (single-pass shared streaming, optional
process-pool fan-out, on-disk resume), and consume the serializable
:class:`ResultSet`.

    from repro.experiments import ExperimentSpec, ResultStore, run_experiment

    spec = ExperimentSpec(
        scale="small",
        methods=("hash", "metis", "tr-metis?warm=true"),
        ks=(2, 4, 8),
    )
    rs = run_experiment(spec, jobs=4, store=ResultStore("results/"))
    print(rs.get("metis", k=8).mean("dynamic_edge_cut"))
    open("sweep.json", "w").write(rs.dumps())
"""

from repro.experiments.results import CellResult, ResultSet
from repro.experiments.run import run_experiment
from repro.experiments.source import (
    LogSource,
    SyntheticSource,
    TraceSource,
    as_log_source,
)
from repro.experiments.spec import (
    SCALES,
    CellKey,
    ExecutionSpec,
    ExperimentSpec,
    MethodSpec,
    config_for_scale,
)
from repro.experiments.store import ResultStore

__all__ = [
    "CellKey",
    "CellResult",
    "ExecutionSpec",
    "ExperimentSpec",
    "LogSource",
    "MethodSpec",
    "ResultSet",
    "ResultStore",
    "SCALES",
    "SyntheticSource",
    "TraceSource",
    "as_log_source",
    "config_for_scale",
    "run_experiment",
]
