"""Bridge from experiment cells to the sharded-execution simulator.

After a cell's partition replay finishes, its final vertex → shard
assignment is fed through :class:`~repro.sharding.ShardedExecution`
under the grid's :class:`~repro.experiments.spec.ExecutionSpec`, and
the resulting throughput report is attached as ``cell.execution``.

Columnar logs take the batched `replay_columnar` driver (no
``Interaction`` boxing); plain interaction lists fall back to the boxed
path — both produce bit-identical reports, so the choice is purely a
matter of speed.  Replays are strict: a cell whose assignment misses a
replayed endpoint raises
:class:`~repro.errors.UnassignedVertexError` instead of silently
dropping load (the assignment came from replaying this very log, so a
miss is a bug, not a degenerate input).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.experiments.spec import ExecutionSpec
from repro.graph.columnar import ColumnarLog
from repro.sharding.coordinator import ShardedExecution
from repro.sharding.throughput import ThroughputReport


def execute_assignment(
    log,
    k: int,
    assignment: Mapping[int, int],
    execution: ExecutionSpec,
) -> ThroughputReport:
    """Replay ``log`` through ``k`` shards under ``assignment``.

    ``log`` is a :class:`ColumnarLog` (batched driver) or a sequence of
    :class:`~repro.graph.builder.Interaction` (boxed driver);
    ``execution.max_rows`` caps the replay to the log tail either way.
    """
    ex = ShardedExecution(
        k, assignment, execution.to_config(), strict=True
    )
    kwargs = dict(
        time_scale=execution.time_scale,
        arrival_rate=execution.arrival_rate,
    )
    if isinstance(log, ColumnarLog):
        lo = 0
        if execution.max_rows is not None:
            lo = max(0, len(log) - execution.max_rows)
        return ex.replay_columnar(log, lo, len(log), **kwargs)
    rows = log
    if execution.max_rows is not None:
        rows = rows[max(0, len(rows) - execution.max_rows):]
    return ex.replay(rows, **kwargs)


def attach_execution(log, cells: Iterable, execution: ExecutionSpec) -> None:
    """Attach a throughput report to each
    :class:`~repro.experiments.results.CellResult`, in place."""
    for cell in cells:
        cell.execution = execute_assignment(
            log, cell.key.k, cell.assignment, execution
        )
