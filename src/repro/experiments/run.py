"""``run_experiment``: plan the grid, resume, fan out, collect.

The one entry point of the declarative experiment API::

    spec = ExperimentSpec(scale="small", methods=PAPER_ORDER, ks=(2, 4, 8))
    rs = run_experiment(spec, jobs=4, store=ResultStore("results/"))
    rs.get("metis", k=8).mean("dynamic_edge_cut")

Execution plan:

1. enumerate the grid cells (``spec.cells()``, optionally restricted
   with ``only=``);
2. load completed cells from the ``store`` — a resumed sweep
   re-executes *zero* finished cells;
3. replay the remaining cells: one shared
   :class:`~repro.core.multireplay.MultiReplayEngine` pass when
   ``jobs<=1``, else cost-balanced chunks over a process pool
   (:mod:`repro.experiments.parallel`), each chunk sharing one stream;
4. persist fresh cells to the store and return a
   :class:`~repro.experiments.results.ResultSet`.

Results are bit-identical to independent legacy
:class:`~repro.core.replay.ReplayEngine` runs for any ``jobs`` — the
engine's fan-out is the unit of equivalence, asserted in
``tests/experiments/test_run.py`` — and to the equivalent synthetic
replay when the spec names a trace file exported from that workload
(``tests/experiments/test_source.py``).

Trace-sourced specs (``spec.source``) never generate a workload: the
sequential path memory-maps the trace once, and the parallel path
ships the tiny :class:`~repro.experiments.source.TraceSource` value to
each worker, which opens the mmap itself — no fork inheritance, no
pickled logs, instant resume.
"""

from __future__ import annotations

from typing import Callable, Collection, Dict, Optional, Sequence, Union

from repro.core.replay import ReplayResult
from repro.ethereum.workload import WorkloadResult, generate_history
from repro.experiments.parallel import partition_cells, replay_chunk, run_chunks_parallel
from repro.experiments.results import CellResult, ResultSet
from repro.experiments.spec import CellKey, ExperimentSpec
from repro.experiments.store import ResultStore

#: ``log=`` accepts a preloaded log (ColumnarLog or interaction
#: sequence) or a zero-arg callable producing one (lazy, like
#: ``workload=``).
LogLike = Union[Sequence, Callable[[], Sequence], None]


def run_experiment(
    spec: ExperimentSpec,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    workload: Union[WorkloadResult, Callable[[], WorkloadResult], None] = None,
    log: LogLike = None,
    only: Optional[Collection[CellKey]] = None,
    progress: Optional[Callable[[CellKey, str], None]] = None,
) -> ResultSet:
    """Run (or resume) an experiment; returns its :class:`ResultSet`.

    Args:
        spec: the declarative grid.
        jobs: worker processes; ``1`` replays every cell in one shared
            single-pass stream, ``N>1`` fans cost-balanced chunks out
            over a process pool (one shared stream per worker; for
            trace-sourced specs every worker mmaps the trace itself).
        store: optional on-disk store; completed cells are loaded
            instead of recomputed and fresh cells are persisted.
        workload: pre-generated workload matching the spec's scale and
            seed (e.g. a runner's memoised one), or a zero-arg callable
            producing it; generated/called on demand only when at
            least one cell must actually run (a fully-resumed sweep
            never pays for workload generation).  A workload whose
            config does not match the spec is rejected — its results
            would be silently persisted under the wrong store identity.
            Invalid for trace-sourced specs.
        log: preloaded interaction log (or a zero-arg callable
            producing one) to replay instead of resolving the spec's
            source — e.g. a :class:`~repro.graph.columnar.ColumnarLog`
            already mmap-ed by the caller.  The caller vouches that it
            matches the spec's source identity.  Mutually exclusive
            with ``workload``.
        only: restrict execution to this subset of ``spec.cells()``
            (callers with their own caches pass just their misses).
        progress: callback ``(cell, outcome)`` with outcome one of
            ``"loaded"`` / ``"computed"``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if workload is not None and log is not None:
        raise ValueError("pass either workload= or log=, not both")
    if workload is not None and spec.is_trace_sourced:
        raise ValueError(
            f"spec replays trace {spec.source.path!r}; pass log= (a "
            "preloaded log) instead of workload="
        )
    cells = spec.cells()
    if only is not None:
        wanted = set(only)
        unknown = wanted - set(cells)
        if unknown:
            raise ValueError(
                f"cells not in the spec's grid: "
                f"{', '.join(sorted(k.label for k in unknown))}"
            )
        cells = tuple(k for k in cells if k in wanted)

    done: Dict[CellKey, CellResult] = {}
    if store is not None:
        done = store.load_known(spec, cells)
        if progress is not None:
            for key in cells:
                if key in done:
                    progress(key, "loaded")
    pending = [k for k in cells if k not in done]

    live: Dict[CellKey, ReplayResult] = {}
    if pending:
        if callable(log):
            log = log()
        if log is not None:
            handle = log
        elif spec.is_trace_sourced:
            # the source itself is the handle: the sequential path
            # loads it once below; the parallel path pickles it to the
            # workers, which open the mmap independently
            handle = spec.source
        else:
            if callable(workload):
                workload = workload()
            if workload is None:
                workload = generate_history(spec.workload_config())
            elif workload.config != spec.workload_config():
                raise ValueError(
                    f"workload config {workload.config} does not match the "
                    f"spec's {spec.workload_config()} ({spec.workload_id()}); "
                    "results would be stored under the wrong identity"
                )
            handle = workload.builder.log
        window = spec.window_seconds
        def collect(cell: CellResult) -> None:
            done[cell.key] = cell
            if store is not None:
                store.save(spec, cell)
            if progress is not None:
                progress(cell.key, "computed")

        if jobs == 1 or len(pending) == 1:
            # one shared stream for the whole remaining grid; keep the
            # full ReplayResults (with the shared cumulative graph) for
            # same-process callers like the back-compat runner facade
            from repro.core.multireplay import MultiReplayEngine
            from repro.experiments.source import LogSource

            shared = handle.load() if isinstance(handle, LogSource) else handle
            methods = [key.method.make(key.k, seed=key.seed) for key in pending]
            replays = MultiReplayEngine(shared, methods, metric_window=window).run()
            fresh = []
            for key, replay in zip(pending, replays):
                live[key] = replay
                fresh.append(CellResult.from_replay(key, replay))
            if spec.execution is not None:
                from repro.experiments.execution import attach_execution

                attach_execution(shared, fresh, spec.execution)
            for cell in fresh:
                collect(cell)
        else:
            # cells persist chunk-by-chunk as workers finish, so an
            # interrupted parallel sweep keeps every completed chunk
            chunks = partition_cells(pending, jobs)
            run_chunks_parallel(
                handle, window, chunks, jobs,
                on_chunk=lambda cells: [collect(c) for c in cells],
                execution=spec.execution,
            )

    rs = ResultSet(spec, done)
    rs._live = live
    return rs


# re-exported convenience: one-call sequential chunk replay (used by
# benchmarks that want engine-level timing without pool overhead)
__all__ = ["run_experiment", "replay_chunk"]
