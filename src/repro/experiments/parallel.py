"""Process-pool fan-out for independent experiment grid cells.

The single-pass :class:`~repro.core.multireplay.MultiReplayEngine`
already shares the log stream and cumulative graph across every method
in one process.  For multi-core sweeps, the grid's cells are split
into ``jobs`` balanced chunks and each chunk replays in its own worker
process — one shared stream *per worker*.  Cells are independent by
construction (each method instance carries its own RNG and state), so
the fan-out is bit-identical to the sequential pass; only the amount
of shared-graph rebuilding changes (once per worker instead of once).

The ``log`` handle every entry point takes is either an in-memory log
(shared with ``fork`` workers via copy-on-write, exactly as before) or
a :class:`~repro.experiments.source.LogSource` — a tiny picklable
value each worker resolves *itself* (for a
:class:`~repro.experiments.source.TraceSource`, an O(1) mmap of the
binary trace).  Source-handle fan-out therefore works under any
multiprocessing start method, not just ``fork``, and never moves log
bytes between processes.

Chunks are balanced with a longest-processing-time greedy using a
per-method cost model: the METIS family's periodic full-graph
repartitioning dominates five-method sweeps (~95% of wall-clock at
small scale pre-warm), so naive round-robin would leave most workers
idle behind one METIS-heavy chunk.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.results import CellResult
from repro.experiments.source import LogSource
from repro.experiments.spec import CellKey, ExecutionSpec
from repro.graph.columnar import ColumnarLog

#: Relative replay cost by method name (measured at small scale; the
#: exact values only matter ordinally for chunk balancing).
_METHOD_COST: Dict[str, float] = {
    "metis": 20.0,
    "r-metis": 6.0,
    "p-metis": 6.0,
    "tr-metis": 4.0,
    "kl": 2.0,
    "fennel": 1.0,
    "hash": 1.0,
}


def cell_cost(key: CellKey) -> float:
    """Heuristic relative cost of one grid cell."""
    base = _METHOD_COST.get(key.method.name, 3.0)
    if dict(key.method.params).get("warm"):
        base = max(1.0, base / 5.0)  # warm-started METIS amortises
    # repartitioning cost grows mildly with k (more parts to refine)
    return base * (1.0 + 0.05 * key.k)


def partition_cells(cells: Sequence[CellKey], jobs: int) -> List[List[CellKey]]:
    """Split cells into ≤ ``jobs`` chunks, balanced by estimated cost
    (longest-processing-time greedy; deterministic)."""
    jobs = max(1, min(jobs, len(cells)))
    if jobs == 1:
        return [list(cells)]
    order = sorted(
        range(len(cells)), key=lambda i: (-cell_cost(cells[i]), i)
    )
    chunks: List[List[CellKey]] = [[] for _ in range(jobs)]
    loads = [0.0] * jobs
    for i in order:
        target = min(range(jobs), key=lambda j: (loads[j], j))
        chunks[target].append(cells[i])
        loads[target] += cell_cost(cells[i])
    return [c for c in chunks if c]


def replay_chunk(
    log,
    window_seconds: float,
    keys: Sequence[CellKey],
    execution: Optional[ExecutionSpec] = None,
) -> List[CellResult]:
    """Replay one chunk of cells in a single shared pass (worker body).

    ``log`` may be an interaction log or a :class:`LogSource`, which
    the worker resolves here — for a trace source, by mmap-ing the
    file in its own address space.  Also used inline as the sequential
    fallback, so the parallel and sequential paths execute literally
    the same code.  When ``execution`` is given, each cell's final
    assignment additionally replays through the sharded executor and
    the report lands in ``cell.execution``.
    """
    from repro.core.multireplay import MultiReplayEngine

    if isinstance(log, LogSource):
        log = log.load()
    methods = [key.method.make(key.k, seed=key.seed) for key in keys]
    replays = MultiReplayEngine(log, methods, metric_window=window_seconds).run()
    cells = [
        CellResult.from_replay(key, replay) for key, replay in zip(keys, replays)
    ]
    if execution is not None:
        from repro.experiments.execution import attach_execution

        attach_execution(log, cells, execution)
    return cells


def _start_method() -> str:
    import multiprocessing

    # no allow_none: resolve (and fix) the platform default, so the
    # fork checks below see "fork" on Linux even before any pool exists
    return multiprocessing.get_start_method()


def _pool_can_run(chunks: Sequence[Sequence[CellKey]]) -> bool:
    """Whether worker processes could resolve every chunk's methods.

    Runtime :func:`~repro.core.registry.register_method` registrations
    live only in this interpreter; ``fork``-started workers inherit
    them, but ``spawn``/``forkserver`` workers re-import a fresh
    registry and would fail on ``key.method.make(...)``.
    """
    from repro.core.registry import is_builtin_method

    if all(is_builtin_method(k.method.name) for c in chunks for k in c):
        return True
    return _start_method() == "fork"


#: (log, window, execution) shared with fork-started workers via
#: copy-on-write inheritance, so the log is never pickled through the
#: call pipe.
_FORK_SHARED = None


def _forked_chunk(keys: Sequence[CellKey]) -> List[CellResult]:
    log, window_seconds, execution = _FORK_SHARED
    return replay_chunk(log, window_seconds, keys, execution)


def run_chunks_parallel(
    log,
    window_seconds: float,
    chunks: Sequence[Sequence[CellKey]],
    jobs: int,
    on_chunk: Optional[Callable[[List[CellResult]], None]] = None,
    execution: Optional[ExecutionSpec] = None,
) -> List[List[CellResult]]:
    """Run chunks over a process pool; results align with ``chunks``.

    ``on_chunk`` fires with each chunk's results *as it completes*
    (callers persist cells incrementally, so an interrupted sweep keeps
    every finished chunk).  A :class:`LogSource` handle is pickled to
    the workers as-is (bytes never cross the pipe; each worker opens
    its own mmap), independent of the start method.  For in-memory
    logs with the ``fork`` start method, workers inherit the log via
    copy-on-write instead of receiving a pickled copy per chunk.
    Falls back to in-process execution when a pool cannot be created
    (restricted sandboxes) or when workers could not resolve a
    runtime-registered custom method; results are identical either
    way.
    """
    results: List[Optional[List[CellResult]]] = [None] * len(chunks)
    source_handle = isinstance(log, LogSource)

    def run_inline(indices):
        # resolve a source once for all inline chunks (lazily, so a
        # fallback with nothing left to recompute never opens it)
        resolved = log
        for i in indices:
            if isinstance(resolved, LogSource):
                resolved = resolved.load()
            results[i] = replay_chunk(
                resolved, window_seconds, chunks[i], execution
            )
            if on_chunk is not None:
                on_chunk(results[i])

    forked = _start_method() == "fork" and not source_handle
    # a buffer-backed (mmap) ColumnarLog cannot be pickled to spawn/
    # forkserver workers — without fork's copy-on-write inheritance the
    # chunks must run inline (callers wanting parallel mmap fan-out on
    # those platforms pass a TraceSource, which each worker opens)
    unpicklable_log = (
        not source_handle
        and not forked
        and isinstance(log, ColumnarLog)
        and not log.is_writable
    )
    if jobs <= 1 or len(chunks) <= 1 or not _pool_can_run(chunks) or unpicklable_log:
        run_inline(range(len(chunks)))
        return results

    global _FORK_SHARED
    try:
        import concurrent.futures as futures

        if forked:
            _FORK_SHARED = (log, window_seconds, execution)
        try:
            with futures.ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as ex:
                if forked:
                    handles = {
                        ex.submit(_forked_chunk, list(c)): i
                        for i, c in enumerate(chunks)
                    }
                else:
                    handles = {
                        ex.submit(
                            replay_chunk, log, window_seconds, list(c), execution
                        ): i
                        for i, c in enumerate(chunks)
                    }
                for handle in futures.as_completed(handles):
                    i = handles[handle]
                    results[i] = handle.result()
                    if on_chunk is not None:
                        on_chunk(results[i])
        finally:
            if forked:
                _FORK_SHARED = None
    except (OSError, PermissionError):
        # recompute only what the pool did not deliver
        run_inline(i for i in range(len(chunks)) if results[i] is None)
    return results
