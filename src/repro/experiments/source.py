"""Log sources: where an experiment's interaction log comes from.

Before this abstraction, every layer assumed the implicit contract
"scale string ⇒ regenerate the synthetic workload": each process paid
the dominant fixed cost of a sweep (EVM-lite execution of the whole
history) before replaying a single cell.  A :class:`LogSource` makes
the origin of the log explicit and serializable:

* :class:`SyntheticSource` — a named workload scale plus generator
  seed; :meth:`~SyntheticSource.load` runs the calibrated generator
  (:mod:`repro.ethereum.workload`).
* :class:`TraceSource` — a trace file (text v1 or binary rctrace
  v2/v3, version-agnostically sniffed); :meth:`~TraceSource.load`
  memory-maps binary traces into a
  :class:`~repro.graph.columnar.ColumnarLog` (zero-copy for v2,
  per-section streaming decode for compressed v3), so opening the
  log is O(1) instead of O(history).  Being a small picklable value,
  a ``TraceSource`` travels to worker processes which open the mmap
  *themselves* — parallel sweeps no longer depend on ``fork``
  inheritance of an in-memory log.

Sources round-trip through JSON (``LogSource.from_dict``) and expose a
stable :attr:`~LogSource.identity` used by
:meth:`~repro.experiments.spec.ExperimentSpec.workload_id` to key the
on-disk :class:`~repro.experiments.store.ResultStore`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import re
from typing import Any, Dict, Union

from repro.ethereum.workload import WorkloadConfig, WorkloadResult

#: Named workload scales; values are WorkloadConfig factory names.
#: ``large`` is the Ethereum-scale export tier (multi-million rows) —
#: sweep it from an exported trace, not by regenerating per process.
SCALES = ("tiny", "small", "medium", "large", "default")

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def config_for_scale(scale: str, seed: int) -> WorkloadConfig:
    """Workload config for a named scale (the CLI/runner vocabulary)."""
    if scale == "tiny":
        return WorkloadConfig.tiny(seed)
    if scale == "small":
        return WorkloadConfig.small(seed)
    if scale == "medium":
        return WorkloadConfig.medium(seed)
    if scale == "large":
        return WorkloadConfig.large(seed)
    if scale == "default":
        return WorkloadConfig(seed=seed)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


class LogSource:
    """Abstract origin of a time-ordered interaction log."""

    kind: str = ""

    def load(self):
        """The interaction log (a sequence or :class:`ColumnarLog`)."""
        raise NotImplementedError

    @property
    def identity(self) -> str:
        """Stable, filesystem-safe identity for store/cache keying."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "LogSource":
        """Rebuild a source from its serialized form (kind-dispatched)."""
        kind = data.get("kind")
        if kind == SyntheticSource.kind:
            return SyntheticSource(scale=data["scale"], seed=int(data["seed"]))
        if kind == TraceSource.kind:
            return TraceSource(path=data["path"])
        raise ValueError(f"unknown log-source kind {kind!r} in {data!r}")


@dataclasses.dataclass(frozen=True)
class SyntheticSource(LogSource):
    """The calibrated synthetic workload at a named scale + seed."""

    scale: str = "small"
    seed: int = 42
    kind = "synthetic"

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; choose from {SCALES}"
            )

    def workload_config(self) -> WorkloadConfig:
        return config_for_scale(self.scale, self.seed)

    def generate(self) -> WorkloadResult:
        """Run the generator (the expensive path a trace file skips)."""
        from repro.ethereum.workload import generate_history

        return generate_history(self.workload_config())

    def load(self):
        return self.generate().builder.log

    @property
    def identity(self) -> str:
        return f"{self.scale}-w{self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "scale": self.scale, "seed": self.seed}


@dataclasses.dataclass(frozen=True)
class TraceSource(LogSource):
    """A trace file on disk (text v1 or binary rctrace v2/v3)."""

    path: str
    kind = "trace"

    def __post_init__(self) -> None:
        # pin relative paths to the construction-time cwd: the path is
        # the source's *identity* (store keys, serialized specs), so it
        # must not drift with the consumer's working directory
        object.__setattr__(
            self, "path", os.path.abspath(os.fspath(self.path))
        )

    def load(self):
        """Open the trace as a :class:`ColumnarLog` (mmap for binary).

        Cheap by design: a binary trace maps in O(1) + verification, so
        worker processes call this themselves instead of inheriting a
        log from the parent.
        """
        from repro.graph.io import load_trace_log

        return load_trace_log(self.path)

    @property
    def identity(self) -> str:
        """``trace-<stem>-<hash8>`` — stable per absolute path.

        The hash covers the *pinned absolute path*, not the content:
        it keeps two same-named traces in different directories from
        colliding in a shared store, while a re-exported file at the
        same path keeps its identity (matching how a regenerated
        synthetic workload keeps ``scale-wseed``).
        """
        digest = hashlib.sha1(self.path.encode("utf-8")).hexdigest()[:8]
        stem = os.path.basename(self.path)
        for suffix in (".gz", ".rct", ".txt"):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
        stem = _SAFE.sub("_", stem).strip("_.") or "trace"
        return f"trace-{stem}-{digest}"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "path": self.path}


SourceLike = Union[str, os.PathLike, LogSource]


def as_log_source(value: SourceLike) -> LogSource:
    """Coerce a path / source into a :class:`LogSource`.

    Strings and path-likes become :class:`TraceSource` (named synthetic
    scales are spelled through ``ExperimentSpec(scale=...,
    workload_seed=...)`` or an explicit :class:`SyntheticSource`).
    """
    if isinstance(value, LogSource):
        return value
    if isinstance(value, (str, os.PathLike)):
        return TraceSource(path=os.fspath(value))
    raise TypeError(
        f"cannot interpret {value!r} as a log source (expected a trace "
        "path, TraceSource or SyntheticSource)"
    )
