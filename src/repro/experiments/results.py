"""Serializable experiment results.

A :class:`CellResult` is the durable projection of one replay: the
metric series, the repartition events, the final vertex → shard map and
the per-shard activity weights — everything the figures, the sharded
simulator and the paper's tables consume, without the cumulative graph
(which is shared, large, and reproducible from the workload).

A :class:`ResultSet` maps a grid of
:class:`~repro.experiments.spec.CellKey` cells to their results, knows
the :class:`~repro.experiments.spec.ExperimentSpec` that produced it,
and round-trips through JSON: ``ResultSet.loads(rs.dumps()) == rs``.

Execution-enabled specs (:class:`ExperimentSpec` with an
:class:`~repro.experiments.spec.ExecutionSpec`) add an ``execution``
block to each serialized cell — the
:class:`~repro.sharding.throughput.ThroughputReport` of replaying the
cell's final assignment through the sharded executor (throughput,
latency percentiles, utilization, migrations; full schema in
``docs/execution.md``).  Plain cells serialize exactly as before; the
key is simply absent.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.assignment import ShardAssignment
from repro.core.base import RepartitionEvent
from repro.core.replay import ReplayResult
from repro.experiments.spec import CellKey, ExperimentSpec, MethodSpec
from repro.metrics.series import MetricPoint, MetricSeries
from repro.sharding.throughput import ThroughputReport


@dataclasses.dataclass
class CellResult:
    """One (method, k, seed) replay, in serializable form.

    ``execution`` is present only when the spec carried an
    :class:`~repro.experiments.spec.ExecutionSpec`: the throughput
    report of replaying the log through the sharded executor under
    this cell's final assignment.
    """

    key: CellKey
    series: MetricSeries
    events: List[RepartitionEvent]
    assignment: Dict[int, int]
    shard_weights: Tuple[int, ...]
    execution: Optional[ThroughputReport] = None

    # -- ReplayResult-compatible read surface --------------------------

    @property
    def method(self) -> str:
        return self.key.method.label

    @property
    def k(self) -> int:
        return self.key.k

    @property
    def seed(self) -> int:
        return self.key.seed

    @property
    def total_moves(self) -> int:
        return sum(e.moves for e in self.events)

    @property
    def num_repartitions(self) -> int:
        return sum(1 for e in self.events if e.moves or e.reassigned)

    def mean(self, column: str) -> float:
        """Mean of a metric column over active (non-empty) windows."""
        pts = [p for p in self.series.points if p.interactions > 0]
        if not pts:
            return 0.0
        return sum(getattr(p, column) for p in pts) / len(pts)

    def to_assignment(self) -> ShardAssignment:
        """Rebuild a live :class:`ShardAssignment` (counts re-derived)."""
        a = ShardAssignment(self.key.k)
        for v, s in self.assignment.items():
            a.assign(v, s)
        a._weights = list(self.shard_weights)
        return a

    # -- construction / serialization ----------------------------------

    @classmethod
    def from_replay(cls, key: CellKey, replay: ReplayResult) -> "CellResult":
        return cls(
            key=key,
            series=replay.series,
            events=list(replay.events),
            assignment=replay.assignment.as_dict(),
            shard_weights=tuple(replay.assignment.weights),
        )

    def to_replay_result(self, graph=None) -> ReplayResult:
        """Back-compat bridge to the legacy result type.

        ``graph`` is ``None`` unless the caller still holds the shared
        cumulative graph (cells loaded from disk or computed in a
        worker process do not).
        """
        return ReplayResult(
            method=self.key.method.name,
            k=self.key.k,
            series=self.series,
            assignment=self.to_assignment(),
            events=list(self.events),
            graph=graph,
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "key": self.key.to_dict(),
            "series": {
                "method": self.series.method,
                "k": self.series.k,
                "points": [dataclasses.asdict(p) for p in self.series.points],
            },
            "events": [dataclasses.asdict(e) for e in self.events],
            # JSON object keys are strings; store as pairs to keep ints
            "assignment": [[v, s] for v, s in sorted(self.assignment.items())],
            "shard_weights": list(self.shard_weights),
        }
        if self.execution is not None:
            data["execution"] = self.execution.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellResult":
        series = MetricSeries(
            method=data["series"]["method"], k=int(data["series"]["k"])
        )
        for p in data["series"]["points"]:
            series.points.append(MetricPoint(**p))
        return cls(
            key=CellKey.from_dict(data["key"]),
            series=series,
            events=[RepartitionEvent(**e) for e in data["events"]],
            assignment={int(v): int(s) for v, s in data["assignment"]},
            shard_weights=tuple(int(w) for w in data["shard_weights"]),
            execution=(
                ThroughputReport.from_dict(data["execution"])
                if data.get("execution") is not None else None
            ),
        )


MethodArg = Union[str, MethodSpec]


class ResultSet:
    """Results of an experiment, keyed by (method spec, k, seed).

    Iteration yields :class:`CellResult` objects in the spec's grid
    order.  Equality compares the spec and every cell (the in-memory
    ``ReplayResult`` handles attached by a same-process run are
    excluded — they do not survive serialization by design).
    """

    def __init__(self, spec: ExperimentSpec, cells: Dict[CellKey, CellResult]):
        self.spec = spec
        order = [k for k in spec.cells() if k in cells]
        # preserve any extra cells (merged sets) after the spec's grid
        order += [k for k in cells if k not in set(order)]
        self._cells: Dict[CellKey, CellResult] = {k: cells[k] for k in order}
        #: full ReplayResults (with the shared graph) for cells computed
        #: in this process; absent for loaded/worker-computed cells.
        self._live: Dict[CellKey, ReplayResult] = {}

    # -- mapping surface -----------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self._cells.values())

    def __contains__(self, key: CellKey) -> bool:
        return key in self._cells

    def keys(self) -> Tuple[CellKey, ...]:
        return tuple(self._cells)

    def items(self):
        return self._cells.items()

    def _key(self, method: MethodArg, k: int, seed: int) -> CellKey:
        return CellKey(method=MethodSpec.parse(method), k=k, seed=seed)

    def get(self, method: MethodArg, k: int, seed: int = 1) -> CellResult:
        """Cell lookup; ``method`` may be a spec or a method string."""
        key = self._key(method, k, seed)
        try:
            return self._cells[key]
        except KeyError:
            raise KeyError(
                f"no result for {key.label}; have: "
                f"{', '.join(c.label for c in self._cells) or '(empty)'}"
            ) from None

    def cell(self, key: CellKey) -> CellResult:
        return self._cells[key]

    def replay(self, key: CellKey) -> Optional[ReplayResult]:
        """The full in-process ReplayResult for a cell, if available."""
        return self._live.get(key)

    # -- equality / serialization --------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.spec == other.spec and self._cells == other._cells

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ResultSet({self.spec.workload_id()}, "
            f"{len(self._cells)}/{len(self.spec.cells())} cells)"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "cells": [c.to_dict() for c in self._cells.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResultSet":
        cells = [CellResult.from_dict(c) for c in data["cells"]]
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            cells={c.key: c for c in cells},
        )

    def dumps(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def loads(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))

    def merged_with(self, other: "ResultSet") -> "ResultSet":
        """New set with ``other``'s cells added (other wins on clash)."""
        merged = dict(self._cells)
        merged.update(other._cells)
        rs = ResultSet(self.spec, merged)
        rs._live = {**self._live, **other._live}
        return rs
