"""On-disk result store: interrupted sweeps resume instead of recomputing.

Layout: one JSON file per grid cell, grouped per store identity — the
workload id plus, for execution-enabled specs, the execution axis::

    <root>/<scale>-w<seed>-win<hours>h/<method-label>--k<k>--s<seed>--<hash>.json
    <root>/<scale>-w<seed>-win<hours>h-exec-<mode>-<hash>/<...>.json

The filename embeds a short hash of the cell's canonical label, so
parameterised method variants that sanitize to the same prefix can
never collide.  Files are written atomically (tmp + rename): a sweep
killed mid-write never leaves a half cell behind, and a cell file
either loads cleanly or is treated as absent and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
from typing import Dict, Iterable, Optional, Union

from repro.experiments.results import CellResult
from repro.experiments.spec import CellKey, ExperimentSpec

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


class ResultStore:
    """Directory-backed store of :class:`CellResult` files."""

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)

    # -- paths ---------------------------------------------------------

    def cell_path(self, spec: ExperimentSpec, key: CellKey) -> pathlib.Path:
        label = key.method.label
        digest = hashlib.sha1(label.encode("utf-8")).hexdigest()[:8]
        stem = _SAFE.sub("_", label).strip("_") or "method"
        name = f"{stem}--k{key.k}--s{key.seed}--{digest}.json"
        return self.root / spec.store_id() / name

    # -- IO ------------------------------------------------------------

    def load(self, spec: ExperimentSpec, key: CellKey) -> Optional[CellResult]:
        """The stored cell, or None if absent/corrupt (recompute then)."""
        path = self.cell_path(spec, key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            cell = CellResult.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        # the filename encodes the key, but verify: a hand-copied file
        # from another grid must not masquerade as this cell
        if cell.key != key:
            return None
        return cell

    def load_known(
        self, spec: ExperimentSpec, keys: Iterable[CellKey]
    ) -> Dict[CellKey, CellResult]:
        out: Dict[CellKey, CellResult] = {}
        for key in keys:
            cell = self.load(spec, key)
            if cell is not None:
                out[key] = cell
        return out

    def save(self, spec: ExperimentSpec, cell: CellResult) -> pathlib.Path:
        path = self.cell_path(spec, cell.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(cell.to_dict()), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultStore({str(self.root)!r})"
