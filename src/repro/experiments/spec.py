"""Declarative experiment specifications.

The experiment API is redesigned around *data* instead of call styles:

* :class:`MethodSpec` — a frozen (name, params) identity for a
  partitioning method.  Parameterised variants (warm METIS, Fennel
  configs, TR-METIS thresholds) are first-class: a spec parses from a
  compact string like ``"tr-metis?warm=true&cut_threshold=0.3"``, is
  validated against the registry up front, and its canonical
  :attr:`~MethodSpec.label` is a stable cache/store key.
* :class:`ExperimentSpec` — one whole comparison grid: the log source
  (named workload scale + seed, **or** a trace file), method specs,
  shard counts, metric window and replay seeds.
  :meth:`ExperimentSpec.cells` enumerates the grid as
  :class:`CellKey` objects, the unit of execution, caching and
  resumption used by :func:`repro.experiments.run.run_experiment`.

Both specs round-trip through JSON (``from_dict(to_dict(spec)) ==
spec``), so sweeps can be described in files and results can carry
their provenance — including which trace file they replayed
(``source=`` serializes into the spec JSON and into the store
identity via :meth:`ExperimentSpec.workload_id`).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.core.registry import (
    available_methods,
    method_accepts_any_params,
    method_params,
)
from repro.ethereum.workload import WorkloadConfig
from repro.experiments.source import (  # re-exported: the runner/CLI vocabulary
    SCALES,
    LogSource,
    SourceLike,
    SyntheticSource,
    TraceSource,
    as_log_source,
    config_for_scale,
)
from repro.graph.snapshot import HOUR

#: Parameter value types a method spec may carry.
ParamValue = Union[bool, int, float, str]


def _coerce_value(text: str) -> ParamValue:
    """Parse a query-string value into the narrowest matching type."""
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _value_to_str(value: ParamValue) -> str:
    if isinstance(value, bool):         # before int: bool is an int subclass
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclasses.dataclass(frozen=True)
class MethodSpec:
    """A partitioning method plus its parameters, as a value.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so specs
    hash and compare structurally; :attr:`label` is the canonical
    string form (``"tr-metis?cut_threshold=0.3&warm=true"``).
    """

    name: str
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        name = self.name.lower()
        if name not in available_methods():
            raise ValueError(
                f"unknown method {self.name!r}; available: "
                f"{', '.join(available_methods())}"
            )
        keys = [str(k) for k, _ in self.params]
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        if dupes:
            raise ValueError(
                f"duplicate parameter(s) for method {name!r}: "
                f"{', '.join(dupes)}"
            )
        params = tuple(sorted((str(k), v) for k, v in self.params))
        accepted = method_params(name)
        accepts_any = method_accepts_any_params(name)
        for key, value in params:
            if key in ("k", "seed"):
                raise ValueError(
                    f"{key!r} is an experiment-level knob (set it on the "
                    f"grid), not a parameter of method {name!r}"
                )
            if not accepts_any and key not in accepted:
                raise ValueError(
                    f"method {name!r} got unknown parameter {key!r}; "
                    f"accepted: {', '.join(accepted) or '(none)'}"
                )
            if isinstance(value, str) and any(c in value for c in "?&="):
                raise ValueError(
                    f"parameter {key}={value!r} contains a reserved "
                    "character ('?', '&' or '=')"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", params)

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, text: Union[str, "MethodSpec"]) -> "MethodSpec":
        """Parse ``"name"`` or ``"name?p1=v1&p2=v2"`` into a spec.

        Values coerce to the narrowest of bool ("true"/"false"), int,
        float, str.  Already-parsed specs pass through unchanged.
        """
        if isinstance(text, MethodSpec):
            return text
        name, _, query = text.partition("?")
        params = []
        if query:
            for pair in query.split("&"):
                key, sep, raw = pair.partition("=")
                if not key or not sep:
                    raise ValueError(
                        f"malformed method parameter {pair!r} in {text!r} "
                        "(expected name=value)"
                    )
                params.append((key, _coerce_value(raw)))
        return cls(name=name, params=tuple(params))

    @classmethod
    def of(cls, name: str, **params: ParamValue) -> "MethodSpec":
        """Keyword-style constructor: ``MethodSpec.of("kl", rounds=3)``."""
        return cls(name=name, params=tuple(params.items()))

    # -- identity ------------------------------------------------------

    @property
    def label(self) -> str:
        """Canonical string form; parseable and cache-key stable."""
        if not self.params:
            return self.name
        query = "&".join(f"{k}={_value_to_str(v)}" for k, v in self.params)
        return f"{self.name}?{query}"

    # -- use -----------------------------------------------------------

    def make(self, k: int, seed: int = 0):
        """Instantiate the method for one grid cell."""
        from repro.core.registry import make_method

        return make_method(self.name, k, seed=seed, **dict(self.params))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": [list(p) for p in self.params]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MethodSpec":
        return cls(
            name=data["name"],
            params=tuple((k, v) for k, v in data.get("params", ())),
        )

    def __str__(self) -> str:
        return self.label


@dataclasses.dataclass(frozen=True)
class CellKey:
    """One grid cell: (method spec, shard count, replay seed)."""

    method: MethodSpec
    k: int
    seed: int = 1

    @property
    def label(self) -> str:
        return f"{self.method.label} k={self.k} seed={self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return {"method": self.method.to_dict(), "k": self.k, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellKey":
        return cls(
            method=MethodSpec.from_dict(data["method"]),
            k=int(data["k"]),
            seed=int(data["seed"]),
        )


@dataclasses.dataclass(frozen=True)
class ExecutionSpec:
    """Sharded-execution cost model + arrival process, as a value.

    Attached to an :class:`ExperimentSpec`, it makes throughput and
    latency first-class cell metrics: after each cell's partition
    replay, the final assignment is fed through
    :class:`~repro.sharding.coordinator.ShardedExecution` and the
    resulting :class:`~repro.sharding.throughput.ThroughputReport`
    lands in ``CellResult.execution``.

    Attributes:
        mode: ``"2pc"`` (distributed commit) or ``"migrate"`` (state
            moves to the majority shard; sticky).
        service_time / prepare_time / commit_time / network_rtt /
            migration_time_fixed / migration_bandwidth /
            warmup_fraction: the cost model, passed straight into
            :class:`~repro.sharding.coordinator.ShardedExecutionConfig`.
        arrival_rate: open-loop arrivals per second; ``None`` (default)
            saturates each cell at 80% of its single-shard capacity
            ``k / service_time``, so throughput is comparable across k.
        time_scale: replay historical timestamps compressed by this
            factor instead of a fixed rate (mutually exclusive with
            ``arrival_rate``).
        max_rows: replay only the last ``max_rows`` log rows (``None``
            = the whole log); bounds execution cost on huge traces.
    """

    mode: str = "2pc"
    service_time: float = 0.001
    prepare_time: float = 0.001
    commit_time: float = 0.0005
    network_rtt: float = 0.005
    migration_time_fixed: float = 0.002
    migration_bandwidth: float = 50e6
    warmup_fraction: float = 0.0
    arrival_rate: Optional[float] = None
    time_scale: float = 0.0
    max_rows: Optional[int] = None

    _FLOAT_FIELDS = (
        "service_time", "prepare_time", "commit_time", "network_rtt",
        "migration_time_fixed", "migration_bandwidth", "warmup_fraction",
        "time_scale",
    )

    def __post_init__(self) -> None:
        # normalise numeric types so parsed ("2000" -> int) and literal
        # (2000.0) specs share one representation, label and identity
        object.__setattr__(self, "mode", str(self.mode))
        for name in self._FLOAT_FIELDS:
            object.__setattr__(self, name, float(getattr(self, name)))
        if self.arrival_rate is not None:
            object.__setattr__(self, "arrival_rate", float(self.arrival_rate))
        if self.max_rows is not None:
            object.__setattr__(self, "max_rows", int(self.max_rows))
        self.to_config()  # mode / cost-model validation lives there
        if self.time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {self.time_scale}")
        if self.arrival_rate is not None and not self.arrival_rate > 0:
            raise ValueError(
                f"arrival_rate must be > 0, got {self.arrival_rate}"
            )
        if self.time_scale > 0 and self.arrival_rate is not None:
            raise ValueError(
                "time_scale and arrival_rate are mutually exclusive "
                f"(got time_scale={self.time_scale}, "
                f"arrival_rate={self.arrival_rate})"
            )
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {self.max_rows}")

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, text: Union[str, "ExecutionSpec"]) -> "ExecutionSpec":
        """Parse ``"2pc"``, ``"migrate"`` or ``"mode=migrate&k1=v1"``.

        Accepts the CLI's ``--execution`` argument syntax: either a
        bare mode name or ``&``-separated ``field=value`` pairs (any
        :class:`ExecutionSpec` field).  Already-parsed specs pass
        through unchanged.
        """
        if isinstance(text, ExecutionSpec):
            return text
        text = text.strip()
        if not text:
            raise ValueError("empty execution spec")
        if "=" not in text:
            return cls(mode=text)
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs: Dict[str, Any] = {}
        for pair in text.split("&"):
            key, sep, raw = pair.partition("=")
            key = key.strip()
            if not key or not sep:
                raise ValueError(
                    f"malformed execution parameter {pair!r} in {text!r} "
                    "(expected field=value)"
                )
            if key not in fields:
                raise ValueError(
                    f"unknown execution field {key!r}; accepted: "
                    f"{', '.join(sorted(fields))}"
                )
            if key in kwargs:
                raise ValueError(f"duplicate execution field {key!r}")
            kwargs[key] = _coerce_value(raw.strip())
        return cls(**kwargs)

    # -- identity ------------------------------------------------------

    @property
    def label(self) -> str:
        """Canonical, parseable string form (non-default fields only)."""
        parts = [f"mode={self.mode}"]
        for field in dataclasses.fields(self):
            if field.name == "mode":
                continue
            value = getattr(self, field.name)
            if value != field.default:
                parts.append(f"{field.name}={_value_to_str(value)}")
        return "&".join(parts)

    @property
    def identity(self) -> str:
        """Short filesystem-safe identity for store keying.

        Hashes *every* field (not just non-defaults), so two specs are
        stored together only if their cost models agree exactly.
        """
        payload = "&".join(
            f"{f.name}={_value_to_str(getattr(self, f.name))}"
            for f in dataclasses.fields(self)
            if getattr(self, f.name) is not None
        )
        digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()[:8]
        return f"exec-{self.mode}-{digest}"

    # -- use -----------------------------------------------------------

    def to_config(self):
        """The :class:`ShardedExecutionConfig` this spec describes."""
        from repro.sharding.coordinator import ShardedExecutionConfig

        return ShardedExecutionConfig(
            service_time=self.service_time,
            prepare_time=self.prepare_time,
            commit_time=self.commit_time,
            network_rtt=self.network_rtt,
            warmup_fraction=self.warmup_fraction,
            mode=self.mode,
            migration_bandwidth=self.migration_bandwidth,
            migration_time_fixed=self.migration_time_fixed,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExecutionSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(
                f"unknown execution field(s): {', '.join(unknown)}"
            )
        return cls(**data)

    def __str__(self) -> str:
        return self.label


MethodLike = Union[str, MethodSpec]


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A whole comparison grid, declaratively.

    Attributes:
        scale: named workload scale (see :data:`SCALES`).
        workload_seed: seed of the synthetic history generator.
        methods: method specs (strings are parsed; order is the
            figure/legend order).
        ks: shard counts to sweep.
        window_hours: metric window width in hours (paper: 4).
        replay_seeds: per-replay method seeds; the grid is
            methods × ks × replay_seeds.
        source: where the log comes from — ``None`` replays the
            synthetic workload named by ``scale``/``workload_seed``; a
            trace path (or :class:`TraceSource`) replays that file
            instead, in which case scale/seed are ignored.  Passing a
            :class:`SyntheticSource` is equivalent to setting
            scale/seed and normalises to ``None``.
        execution: optional :class:`ExecutionSpec` (strings parse, e.g.
            ``"mode=migrate"``); when set, every cell's final
            assignment additionally runs through the sharded executor
            and ``CellResult.execution`` carries the throughput report.
    """

    # methods/ks/replay_seeds are deliberately NOT part of store_id():
    # the store keys *cells* (method × k × seed) under a workload id,
    # so grids with different method sets share cached cell results
    # instead of recomputing them — see ResultStore.cell_path.
    scale: str = "small"
    workload_seed: int = 42
    methods: Tuple[MethodSpec, ...] = ("hash", "metis")  # type: ignore[assignment]  # reprolint: disable=RL013 -- cells are keyed per-method inside the store; sharing across grids is intended
    ks: Tuple[int, ...] = (2,)  # reprolint: disable=RL013 -- cells are keyed per-k inside the store; sharing across grids is intended
    window_hours: float = 24.0
    replay_seeds: Tuple[int, ...] = (1,)  # reprolint: disable=RL013 -- cells are keyed per-seed inside the store; sharing across grids is intended
    source: Optional[TraceSource] = None  # type: ignore[assignment]
    execution: Optional[ExecutionSpec] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        execution = self.execution
        if execution is not None and not isinstance(execution, ExecutionSpec):
            if isinstance(execution, str):
                execution = ExecutionSpec.parse(execution)
            elif isinstance(execution, dict):
                execution = ExecutionSpec.from_dict(execution)
            else:
                raise ValueError(
                    f"execution must be an ExecutionSpec, string or dict, "
                    f"got {execution!r}"
                )
        object.__setattr__(self, "execution", execution)
        source = self.source
        if source is not None:
            source = as_log_source(source)
            if isinstance(source, SyntheticSource):
                # canonical form: synthetic sources live in scale/seed
                object.__setattr__(self, "scale", source.scale)
                object.__setattr__(self, "workload_seed", source.seed)
                source = None
        object.__setattr__(self, "source", source)
        if self.scale not in SCALES:
            raise ValueError(f"unknown scale {self.scale!r}; choose from {SCALES}")
        methods = tuple(MethodSpec.parse(m) for m in _as_iterable(self.methods))
        if not methods:
            raise ValueError("an experiment needs at least one method")
        ks = tuple(int(k) for k in _as_iterable(self.ks))
        if not ks or any(k < 1 for k in ks):
            raise ValueError(f"shard counts must be >= 1, got {self.ks!r}")
        seeds = tuple(int(s) for s in _as_iterable(self.replay_seeds))
        if not seeds:
            raise ValueError("an experiment needs at least one replay seed")
        if self.window_hours <= 0:
            raise ValueError("window_hours must be positive")
        object.__setattr__(self, "methods", methods)
        object.__setattr__(self, "ks", ks)
        object.__setattr__(self, "replay_seeds", seeds)

    # -- derived -------------------------------------------------------

    @property
    def window_seconds(self) -> float:
        return self.window_hours * HOUR

    @property
    def log_source(self) -> LogSource:
        """The effective :class:`LogSource` of this grid."""
        if self.source is not None:
            return self.source
        return SyntheticSource(scale=self.scale, seed=self.workload_seed)

    @property
    def is_trace_sourced(self) -> bool:
        return self.source is not None

    def workload_config(self) -> WorkloadConfig:
        if self.is_trace_sourced:
            raise ValueError(
                f"spec replays trace {self.source.path!r}; it has no "
                "synthetic workload config"
            )
        return config_for_scale(self.scale, self.workload_seed)

    def workload_id(self) -> str:
        """Identity of the replayed workload + windowing (store keying)."""
        return f"{self.log_source.identity}-win{self.window_hours:g}h"

    def store_id(self) -> str:
        """Store-directory identity: the workload plus — when present —
        the execution axis, so execution-enabled cells never collide
        with plain ones (their results carry extra state)."""
        if self.execution is None:
            return self.workload_id()
        return f"{self.workload_id()}-{self.execution.identity}"

    def cells(self) -> Tuple[CellKey, ...]:
        """The grid as (method × k × seed) cells, deduplicated, in
        deterministic methods-major order."""
        seen = dict.fromkeys(
            CellKey(method=m, k=k, seed=s)
            for m in self.methods
            for k in self.ks
            for s in self.replay_seeds
        )
        return tuple(seen)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "scale": self.scale,
            "workload_seed": self.workload_seed,
            "methods": [m.label for m in self.methods],
            "ks": list(self.ks),
            "window_hours": self.window_hours,
            "replay_seeds": list(self.replay_seeds),
        }
        if self.source is not None:
            data["source"] = self.source.to_dict()
        if self.execution is not None:
            data["execution"] = self.execution.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        source = data.get("source")
        execution = data.get("execution")
        return cls(
            scale=data["scale"],
            workload_seed=int(data["workload_seed"]),
            methods=tuple(data["methods"]),
            ks=tuple(data["ks"]),
            window_hours=float(data["window_hours"]),
            replay_seeds=tuple(data.get("replay_seeds", (1,))),
            source=LogSource.from_dict(source) if source is not None else None,
            execution=(
                ExecutionSpec.from_dict(execution)
                if execution is not None else None
            ),
        )


def _as_iterable(value) -> Iterable:
    if isinstance(value, (str, MethodSpec)):
        return (value,)
    if isinstance(value, (int, float)):
        return (value,)
    return value
