"""Entry point: ``python -m repro.lint src tests benchmarks examples``."""

import sys

from repro.lint.cli import main

sys.exit(main())
