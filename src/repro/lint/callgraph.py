"""Project-wide symbol table and conservative call graph.

reprolint's original rules are intraprocedural: they flag *direct*
call sites, so a wall-clock read three frames below
``MultiReplayEngine.run`` passes clean.  This module gives the linter
a whole-project view without ever importing the analysed code:

* :func:`build_summary` distils one parsed file into a
  :class:`ModuleSummary` — an intermediate representation holding
  everything the interprocedural rules need (functions and the calls
  they make, classes with fields/bases/``__init__`` signatures,
  const-evaluable top-level assignments for the rctrace-drift checks,
  registry facts, process-pool ``submit`` sites).  Summaries are plain
  JSON-serializable data, which is what makes the incremental lint
  cache (:mod:`repro.lint.cache`) possible: a warm run loads cached
  summaries instead of re-parsing unchanged files.
* :class:`CallGraph` joins the summaries of one lint run into a symbol
  table and resolves call sites to project functions: per-module
  import/alias resolution (``import repro.graph.io as rio``),
  re-exported names through ``__init__`` modules, ``self.`` dispatch
  inside a class (method resolution walks locally-visible base
  classes), and attribute dispatch through annotation-inferred types
  (``def f(log: ColumnarLog): log.window(...)``).

Everything is *conservative in the quiet direction*: a call the
resolver cannot prove to target a project function produces no edge,
so dynamic dispatch never manufactures false chains.  Cycles in the
call graph are handled by the visited sets of every traversal.

Module names derive from lint-relative paths (``src/`` is stripped,
``__init__.py`` names its package), and imported module paths resolve
by exact match first, then by unique dotted-suffix match — so fixture
projects rooted somewhere under ``tests/`` resolve their own imports
the same way ``repro.*`` does.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Wall-clock reads that make replay results depend on *when* the code
#: runs (shared with RL003; RL011 uses it for transitive taint).
WALL_CLOCK_CALLS: Dict[str, str] = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}

#: ``random`` attributes that are deterministic to touch (shared with
#: RL001 and the RL011 taint source detection).
RANDOM_ALLOWED = frozenset({"Random"})

#: Call targets (dotted-name tails) that produce a possibly
#: mmap/memoryview-backed :class:`ColumnarLog` — unpicklable, so they
#: must never flow into a process-pool ``submit`` (RL012).
BUFFER_LOG_MAKERS = frozenset(
    {"load_columnar", "load_trace_log", "ColumnarLog.from_buffers"}
)

_TAINT_WALL_CLOCK = "wall-clock"
_TAINT_UNSEEDED = "unseeded-random"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(
    tree: ast.Module, modname: str = "", is_package: bool = False
) -> Tuple[Dict[str, str], Dict[str, Tuple[str, str]]]:
    """(module aliases, from-import aliases) of a file.

    ``import random as rnd`` -> ``{"rnd": "random"}``;
    ``from random import randint as ri`` -> ``{"ri": ("random", "randint")}``.
    Relative imports resolve against ``modname`` when it is known.
    """
    modules: Dict[str, str] = {}
    names: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level > 0:
                package = _relative_base(modname, is_package, node.level)
                if package is None:
                    continue
                base = f"{package}.{node.module}" if node.module else package
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                names[alias.asname or alias.name] = (base, alias.name)
    return modules, names


def _relative_base(modname: str, is_package: bool, level: int) -> Optional[str]:
    """Package a ``from ..x import y`` resolves against, or None."""
    if not modname:
        return None
    parts = modname.split(".")
    # a package's own module name *is* its level-1 base; a plain module
    # drops its final segment first
    drop = level - 1 if is_package else level
    if drop >= len(parts):
        return None
    return ".".join(parts[: len(parts) - drop]) if drop else modname


def module_name(relpath: str) -> Tuple[str, bool]:
    """(dotted module name, is_package) for a lint-relative path.

    The leading ``src/`` segment is stripped so ``src/repro/x.py``
    names ``repro.x`` — matching how the code imports itself.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if len(parts) > 1 and parts[0] == "src":
        parts = parts[1:]
    if parts[-1] == "__init__":
        return ".".join(parts[:-1]), True
    return ".".join(parts), False


# ----------------------------------------------------------------------
# the summary IR


@dataclasses.dataclass
class FunctionInfo:
    """One top-level function or method (nested defs fold into it)."""

    qualname: str
    line: int
    col: int
    #: outgoing call sites: {"via": "name"|"self"|"type", ...}
    calls: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    #: nondeterminism taint sources reached *directly* by this body
    bad_calls: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    reads_fork_shared: bool = False
    #: ``self.<attr>`` loads (methods only; RL013 identity coverage)
    self_reads: List[str] = dataclasses.field(default_factory=list)
    #: body calls ``dataclasses.fields(...)`` (covers every field)
    fields_introspection: bool = False


@dataclasses.dataclass
class ClassInfo:
    name: str
    line: int
    col: int
    #: alias-resolved base expressions (dotted, best effort)
    bases: List[str] = dataclasses.field(default_factory=list)
    #: last segment of each base (the name-level join RL008/RL013 use)
    base_tails: List[str] = dataclasses.field(default_factory=list)
    is_dataclass: bool = False
    is_abstract: bool = False
    #: annotated (dataclass) fields declared in this class body
    fields: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    #: attribute name -> dotted class, from annotations / __init__
    attr_types: Dict[str, str] = dataclasses.field(default_factory=dict)
    methods: List[str] = dataclasses.field(default_factory=list)
    #: own ``__init__`` signature: {"varargs": bool, "params": [...]}
    init_sig: Optional[Dict[str, object]] = None


@dataclasses.dataclass
class ModuleSummary:
    """Everything the interprocedural rules need from one file."""

    relpath: str
    modname: str
    is_package: bool
    #: top-level from-import bindings: local name -> absolute dotted
    exports: Dict[str, str] = dataclasses.field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    #: top-level class definitions in file order (RL008): (name, line, col)
    top_level_classes: List[Tuple[str, int, int]] = dataclasses.field(
        default_factory=list
    )
    #: const-evaluable top-level assigns (RL005): (name, encoded, line, col)
    consts: List[Tuple[str, Dict[str, object], int, int]] = dataclasses.field(
        default_factory=list
    )
    #: class names listed as _FACTORIES values (RL008)
    factories: List[str] = dataclasses.field(default_factory=list)
    #: class names passed to register_method() (RL008)
    register_calls: List[str] = dataclasses.field(default_factory=list)
    registry_present: bool = False
    #: process-pool submit sites (RL012)
    submits: List[Dict[str, object]] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        functions = {
            name: FunctionInfo(**info)
            for name, info in data.get("functions", {}).items()
        }
        classes = {
            name: ClassInfo(**info) for name, info in data.get("classes", {}).items()
        }
        return cls(
            relpath=data["relpath"],
            modname=data["modname"],
            is_package=data["is_package"],
            exports=dict(data.get("exports", {})),
            functions=functions,
            classes=classes,
            top_level_classes=[tuple(t) for t in data.get("top_level_classes", ())],
            consts=[tuple(c) for c in data.get("consts", ())],
            factories=list(data.get("factories", ())),
            register_calls=list(data.get("register_calls", ())),
            registry_present=bool(data.get("registry_present", False)),
            submits=list(data.get("submits", ())),
        )


# ----------------------------------------------------------------------
# RL005 const encoding (expressions serialized for the cache, evaluated
# at project level where cross-module name references resolve)


def encode_const(node: ast.AST) -> Optional[Dict[str, object]]:
    """Serializable form of a const-evaluable expression, else None."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (str, int, float, bool)) or node.value is None:
            return {"k": "c", "v": node.value}
        return None
    if isinstance(node, (ast.Tuple, ast.List)):
        elts = [encode_const(e) for e in node.elts]
        if any(e is None for e in elts):
            return None
        return {"k": "t", "v": elts}
    if isinstance(node, ast.Dict):
        items = []
        for key, value in zip(node.keys, node.values):
            if key is None:
                continue
            ek, ev = encode_const(key), encode_const(value)
            if ek is None or ev is None:
                return None
            items.append([ek, ev])
        return {"k": "d", "v": items}
    if isinstance(node, ast.Name):
        return {"k": "n", "v": node.id}
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = encode_const(node.operand)
        return None if operand is None else {"k": "neg", "v": operand}
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func) or ""
        tail = dotted.split(".")[-1]
        if tail == "Struct" and len(node.args) == 1 and not node.keywords:
            arg = encode_const(node.args[0])
            return None if arg is None else {"k": "struct", "v": arg}
        if dotted == "frozenset" and len(node.args) <= 1 and not node.keywords:
            arg = encode_const(node.args[0]) if node.args else {"k": "t", "v": []}
            return None if arg is None else {"k": "fs", "v": arg}
    return None


# ----------------------------------------------------------------------
# summary construction


class _ModuleContext:
    """Name-resolution context shared by every scope of one file."""

    def __init__(self, relpath: str, tree: ast.Module):
        self.modname, self.is_package = module_name(relpath)
        self.aliases, self.from_names = _import_aliases(
            tree, self.modname, self.is_package
        )
        self.top_defs: Set[str] = {
            stmt.name
            for stmt in tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }

    def resolve(self, dotted: str) -> Optional[str]:
        """Absolute dotted target of a name used in this module."""
        head, _, rest = dotted.partition(".")
        if head in self.top_defs:
            return f"{self.modname}.{dotted}"
        if head in self.aliases:
            base = self.aliases[head]
            return f"{base}.{rest}" if rest else base
        if head in self.from_names:
            mod, orig = self.from_names[head]
            qualified = f"{mod}.{orig}"
            return f"{qualified}.{rest}" if rest else qualified
        return None

    def resolve_annotation(self, node: Optional[ast.AST]) -> Optional[str]:
        """Dotted class named by a plain annotation (no subscripts)."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.strip("'\" ")
            return self.resolve(text) or text if text.isidentifier() or "." in text else None
        dotted = _dotted(node)
        if dotted is None:
            return None
        return self.resolve(dotted) or dotted


def _walk_shallow(body: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested class scopes.

    Nested *functions* are entered (their behaviour belongs to the
    enclosing function for call-graph purposes); nested classes get
    their own summary entries.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.ClassDef):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _decorator_names(node: ast.AST) -> Iterator[str]:
    for decorator in getattr(node, "decorator_list", ()):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = _dotted(target)
        if dotted:
            yield dotted


def _local_var_types(
    body: Sequence[ast.AST], ctx: _ModuleContext, args: Optional[ast.arguments]
) -> Dict[str, str]:
    """var name -> dotted class, from annotations and constructor calls."""
    types: Dict[str, str] = {}
    if args is not None:
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            resolved = ctx.resolve_annotation(arg.annotation)
            if resolved:
                types[arg.arg] = resolved
    for node in _walk_shallow(body):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            resolved = ctx.resolve_annotation(node.annotation)
            if resolved:
                types[node.target.id] = resolved
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                dotted = _dotted(node.value.func)
                resolved = ctx.resolve(dotted) if dotted else None
                if resolved:
                    types[target.id] = resolved
    return types


def _extract_calls(
    info: FunctionInfo,
    body: Sequence[ast.AST],
    ctx: _ModuleContext,
    cls: Optional[ClassInfo],
    args: Optional[ast.arguments],
) -> None:
    """Fill ``info`` with call records, taint sources and self reads."""
    var_types = _local_var_types(body, ctx, args)
    rng_vars = _rng_vars(body, ctx)
    for node in _walk_shallow(body):
        if isinstance(node, ast.Name):
            if node.id == "_FORK_SHARED" and isinstance(node.ctx, ast.Load):
                info.reads_fork_shared = True
            continue
        if isinstance(node, ast.Attribute):
            if (
                cls is not None
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and isinstance(node.ctx, ast.Load)
                and node.attr not in info.self_reads
            ):
                info.self_reads.append(node.attr)
            continue
        if not isinstance(node, ast.Call):
            continue
        _record_bad_calls(info, node, ctx, rng_vars)
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if parts[0] == "self" and cls is not None:
            if len(parts) == 2:
                info.calls.append(
                    {"via": "self", "cls": cls.name, "attr": parts[1],
                     "line": node.lineno, "col": node.col_offset}
                )
            elif len(parts) == 3 and parts[1] in cls.attr_types:
                info.calls.append(
                    {"via": "type", "cls": cls.attr_types[parts[1]],
                     "attr": parts[2], "line": node.lineno,
                     "col": node.col_offset}
                )
            continue
        if len(parts) == 2 and parts[0] in var_types:
            info.calls.append(
                {"via": "type", "cls": var_types[parts[0]], "attr": parts[1],
                 "line": node.lineno, "col": node.col_offset}
            )
            continue
        resolved = ctx.resolve(dotted)
        if resolved is not None:
            info.calls.append(
                {"via": "name", "target": resolved, "line": node.lineno,
                 "col": node.col_offset}
            )
            if resolved == "dataclasses.fields":
                info.fields_introspection = True


def _rng_vars(body: Sequence[ast.AST], ctx: _ModuleContext) -> Set[str]:
    """Local names bound to ``random.Random(...)`` instances."""
    rng: Set[str] = set()
    for node in _walk_shallow(body):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            dotted = _dotted(node.value.func)
            if dotted and ctx.resolve(dotted) == "random.Random":
                rng.add(node.targets[0].id)
    return rng


def _record_bad_calls(
    info: FunctionInfo, node: ast.Call, ctx: _ModuleContext, rng_vars: Set[str]
) -> None:
    """Detect direct nondeterminism sources at this call site."""
    dotted = _dotted(node.func)
    resolved = ctx.resolve(dotted) if dotted else None

    def bad(kind: str, label: str) -> None:
        info.bad_calls.append(
            {"kind": kind, "label": label, "line": node.lineno,
             "col": node.col_offset}
        )

    if resolved in WALL_CLOCK_CALLS:
        bad(_TAINT_WALL_CLOCK, WALL_CLOCK_CALLS[resolved])
        return
    if resolved is not None and resolved.startswith("random."):
        attr = resolved.split(".", 1)[1]
        if attr not in RANDOM_ALLOWED:
            bad(_TAINT_UNSEEDED, f"random.{attr}()")
            return
        if attr == "Random" and not node.args and not node.keywords:
            bad(_TAINT_UNSEEDED, "random.Random() without a seed")
            return
    # instance reseeding from OS entropy: rng.seed() with no arguments
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "seed"
        and not node.args
        and not node.keywords
    ):
        receiver = node.func.value
        if isinstance(receiver, ast.Name) and receiver.id in rng_vars:
            bad(_TAINT_UNSEEDED, f"{receiver.id}.seed() with no arguments")
        elif isinstance(receiver, ast.Call):
            inner = _dotted(receiver.func)
            if inner and ctx.resolve(inner) == "random.Random":
                bad(_TAINT_UNSEEDED, "Random(...).seed() with no arguments")


def _class_info(node: ast.ClassDef, ctx: _ModuleContext) -> ClassInfo:
    decorators = list(_decorator_names(node))
    cls = ClassInfo(
        name=node.name,
        line=node.lineno,
        col=node.col_offset,
        bases=[ctx.resolve(_dotted(b) or "") or (_dotted(b) or "") for b in node.bases],
        base_tails=[(_dotted(b) or "").split(".")[-1] for b in node.bases],
        is_dataclass=any(d.split(".")[-1] == "dataclass" for d in decorators),
    )
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            annotation = ast.dump(item.annotation)
            resolved = ctx.resolve_annotation(item.annotation)
            if "ClassVar" not in annotation:
                cls.fields.append(
                    {"name": item.target.id, "line": item.lineno,
                     "col": item.col_offset}
                )
            if resolved:
                cls.attr_types[item.target.id] = resolved
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods.append(item.name)
            if any(
                "abstractmethod" in d for d in _decorator_names(item)
            ):
                cls.is_abstract = True
            if item.name == "__init__":
                cls.init_sig = _init_signature(item)
                _self_attr_types(item, ctx, cls)
    return cls


def _init_signature(init: ast.FunctionDef) -> Dict[str, object]:
    args = init.args
    params = [a.arg for a in list(args.posonlyargs) + list(args.args)][1:]
    params += [a.arg for a in args.kwonlyargs]
    return {
        "varargs": args.vararg is not None or args.kwarg is not None,
        "params": params,
    }


def _self_attr_types(
    init: ast.FunctionDef, ctx: _ModuleContext, cls: ClassInfo
) -> None:
    """``self.x = ClassName(...)`` / ``self.x: T`` inside __init__."""
    for node in ast.walk(init):
        target = None
        resolved = None
        if isinstance(node, ast.AnnAssign):
            target = node.target
            resolved = ctx.resolve_annotation(node.annotation)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(node.value, ast.Call):
                dotted = _dotted(node.value.func)
                resolved = ctx.resolve(dotted) if dotted else None
        if (
            resolved
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr not in cls.attr_types
        ):
            cls.attr_types[target.attr] = resolved


def build_summary(relpath: str, tree: ast.Module) -> ModuleSummary:
    """Distil one parsed file into its :class:`ModuleSummary`."""
    ctx = _ModuleContext(relpath, tree)
    summary = ModuleSummary(
        relpath=relpath, modname=ctx.modname, is_package=ctx.is_package
    )
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level > 0:
                package = _relative_base(ctx.modname, ctx.is_package, stmt.level)
                if package is None:
                    continue
                base = f"{package}.{stmt.module}" if stmt.module else package
            if base:
                for alias in stmt.names:
                    if alias.name != "*":
                        summary.exports[alias.asname or alias.name] = (
                            f"{base}.{alias.name}"
                        )
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                encoded = encode_const(stmt.value)
                if encoded is not None:
                    summary.consts.append(
                        (target.id, encoded, stmt.lineno, stmt.col_offset)
                    )

    # classes first: self-dispatch and attr types need them in scope
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            summary.classes.setdefault(node.name, _class_info(node, ctx))
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            summary.top_level_classes.append(
                (stmt.name, stmt.lineno, stmt.col_offset)
            )

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname=stmt.name, line=stmt.lineno, col=stmt.col_offset
            )
            _extract_calls(info, stmt.body, ctx, None, stmt.args)
            _collect_submits(summary, info.qualname, stmt, ctx)
            summary.functions[info.qualname] = info
        elif isinstance(stmt, ast.ClassDef):
            cls = summary.classes[stmt.name]
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        qualname=f"{stmt.name}.{item.name}",
                        line=item.lineno,
                        col=item.col_offset,
                    )
                    _extract_calls(info, item.body, ctx, cls, item.args)
                    _collect_submits(summary, info.qualname, item, ctx)
                    summary.functions[info.qualname] = info

    _collect_registry_facts(summary, tree)
    return summary


def _collect_registry_facts(summary: ModuleSummary, tree: ast.Module) -> None:
    """RL008 inputs: _FACTORIES values and register_method() calls."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if (
                len(targets) == 1
                and isinstance(targets[0], ast.Name)
                and targets[0].id == "_FACTORIES"
                and isinstance(node.value, ast.Dict)
            ):
                summary.registry_present = True
                for value in node.value.values:
                    name = (_dotted(value) or "").split(".")[-1]
                    if name:
                        summary.factories.append(name)
        elif isinstance(node, ast.Call):
            callee = (_dotted(node.func) or "").split(".")[-1]
            if callee == "register_method" and len(node.args) >= 2:
                summary.registry_present = True
                name = (_dotted(node.args[1]) or "").split(".")[-1]
                if name:
                    summary.register_calls.append(name)


# ----------------------------------------------------------------------
# RL012 submit-site collection


def _contains_fork_constant(node: ast.AST) -> bool:
    return any(
        isinstance(n, ast.Constant) and n.value == "fork" for n in ast.walk(node)
    )


def _classify_arg(
    node: ast.AST,
    ctx: _ModuleContext,
    nested_defs: Set[str],
    open_vars: Set[str],
    buffer_vars: Set[str],
) -> Dict[str, object]:
    """How picklable-by-construction one submit argument is."""

    def desc(kind: str, name: str, target: Optional[str] = None) -> Dict[str, object]:
        return {"kind": kind, "name": name, "target": target,
                "line": getattr(node, "lineno", 0),
                "col": getattr(node, "col_offset", 0)}

    if isinstance(node, ast.Lambda):
        return desc("lambda", "<lambda>")
    if isinstance(node, ast.Name):
        if node.id in nested_defs:
            return desc("nested_func", node.id)
        if node.id in open_vars:
            return desc("open_handle", node.id)
        if node.id in buffer_vars:
            return desc("buffer_log", node.id)
        resolved = ctx.resolve(node.id)
        if resolved is not None:
            return desc("module_func", node.id, resolved)
        return desc("other", node.id)
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func) or ""
        resolved = ctx.resolve(dotted) or dotted
        tail = resolved.split(".")[-1]
        two_tail = ".".join(resolved.split(".")[-2:])
        if resolved == "open" or tail == "open":
            return desc("open_handle", dotted or "open(...)")
        if tail in BUFFER_LOG_MAKERS or two_tail in BUFFER_LOG_MAKERS:
            return desc("buffer_log", dotted or "<call>")
        return desc("other", dotted or "<call>")
    return desc("other", "<expr>")


def _collect_submits(
    summary: ModuleSummary,
    qualname: str,
    func: ast.AST,
    ctx: _ModuleContext,
) -> None:
    """Record ProcessPoolExecutor.submit sites inside one function."""
    body = getattr(func, "body", [])
    executors: Set[str] = set()
    guarded_names: Set[str] = set()
    nested_defs: Set[str] = set()
    open_vars: Set[str] = set()
    buffer_vars: Set[str] = set()
    for node in _walk_shallow(body):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            nested_defs.add(node.name)
        elif isinstance(node, ast.withitem):
            call = node.context_expr
            if (
                isinstance(call, ast.Call)
                and (_dotted(call.func) or "").split(".")[-1] == "ProcessPoolExecutor"
                and isinstance(node.optional_vars, ast.Name)
            ):
                executors.add(node.optional_vars.id)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node.value, ast.Call):
                tail = (_dotted(node.value.func) or "").split(".")[-1]
                resolved = ctx.resolve(_dotted(node.value.func) or "") or ""
                two_tail = ".".join(resolved.split(".")[-2:]) if resolved else ""
                if tail == "ProcessPoolExecutor":
                    executors.add(target.id)
                elif tail == "open":
                    open_vars.add(target.id)
                elif tail in BUFFER_LOG_MAKERS or two_tail in BUFFER_LOG_MAKERS:
                    buffer_vars.add(target.id)
            if _contains_fork_constant(node.value):
                guarded_names.add(target.id)
    if not executors:
        return

    def guard_in_test(test: ast.AST) -> bool:
        if _contains_fork_constant(test):
            return True
        return any(
            isinstance(n, ast.Name) and n.id in guarded_names
            for n in ast.walk(test)
        )

    def scan(stmts: Sequence[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                scan(stmt.body, guarded or guard_in_test(stmt.test))
                scan(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                scan(stmt.body, guarded)
                scan(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                scan(stmt.body, guarded)
            elif isinstance(stmt, ast.Try):
                for part in (stmt.body, stmt.orelse, stmt.finalbody):
                    scan(part, guarded)
                for handler in stmt.handlers:
                    scan(handler.body, guarded)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan(stmt.body, guarded)
            else:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "submit"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in executors
                        and node.args
                    ):
                        classify = lambda a: _classify_arg(  # noqa: E731
                            a, ctx, nested_defs, open_vars, buffer_vars
                        )
                        summary.submits.append(
                            {
                                "function": qualname,
                                "line": node.lineno,
                                "col": node.col_offset,
                                "guarded": guarded,
                                "func": classify(node.args[0]),
                                "args": [classify(a) for a in node.args[1:]],
                            }
                        )

    scan(body, False)


# ----------------------------------------------------------------------
# the call graph


class CallGraph:
    """Symbol table + resolved call edges over one lint run."""

    def __init__(self, summaries: Sequence[ModuleSummary]):
        self.summaries: List[ModuleSummary] = list(summaries)
        self.by_modname: Dict[str, ModuleSummary] = {}
        #: "modname.qualname" -> (summary, FunctionInfo)
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionInfo]] = {}
        for summary in self.summaries:
            self.by_modname.setdefault(summary.modname, summary)
            for qualname, info in summary.functions.items():
                self.functions.setdefault(f"{summary.modname}.{qualname}", (summary, info))
        self._module_cache: Dict[str, Optional[Tuple[ModuleSummary, str]]] = {}
        self._edges: Optional[Dict[str, List[Tuple[str, Dict[str, object]]]]] = None

    # -- symbol resolution --------------------------------------------

    def _resolve_module(self, dotted: str) -> Optional[Tuple[ModuleSummary, str]]:
        """(module summary, remainder) for the longest module prefix."""
        if dotted in self._module_cache:
            return self._module_cache[dotted]
        parts = dotted.split(".")
        result: Optional[Tuple[ModuleSummary, str]] = None
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            rest = ".".join(parts[i:])
            if prefix in self.by_modname:
                result = (self.by_modname[prefix], rest)
                break
            suffix_hits = [
                m for m in self.by_modname if m.endswith("." + prefix)
            ]
            if len(suffix_hits) == 1:
                result = (self.by_modname[suffix_hits[0]], rest)
                break
        self._module_cache[dotted] = result
        return result

    def mro_method(
        self, modname: str, clsname: str, attr: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Symbol of ``attr`` on class ``clsname``, walking bases."""
        seen = _seen if _seen is not None else set()
        key = f"{modname}.{clsname}"
        if key in seen:
            return None
        seen.add(key)
        summary = self.by_modname.get(modname)
        if summary is None or clsname not in summary.classes:
            return None
        cls = summary.classes[clsname]
        if attr in cls.methods:
            return f"{modname}.{clsname}.{attr}"
        for base in cls.bases:
            resolved = self.resolve_class(base)
            if resolved is None:
                continue
            base_mod, base_cls = resolved
            found = self.mro_method(base_mod, base_cls, attr, seen)
            if found is not None:
                return found
        return None

    def resolve_class(self, dotted: str) -> Optional[Tuple[str, str]]:
        """(modname, classname) a dotted class reference points at."""
        hit = self._resolve_module(dotted)
        if hit is None:
            return None
        summary, rest = hit
        if not rest:
            return None
        parts = rest.split(".")
        if parts[0] in summary.classes and len(parts) == 1:
            return summary.modname, parts[0]
        if parts[0] in summary.exports:
            target = summary.exports[parts[0]]
            if len(parts) > 1:
                target = f"{target}.{'.'.join(parts[1:])}"
            return self.resolve_class(target)
        return None

    def resolve_call(self, call: Dict[str, object], depth: int = 0) -> List[str]:
        """Project function symbols one call record can land on."""
        if depth > 8:
            return []
        via = call.get("via")
        if via == "self" or via == "type":
            cls = str(call["cls"])
            attr = str(call["attr"])
            if via == "self":
                # the class is local to the calling module; the caller
                # stores its summary modname alongside
                modname = str(call.get("mod", ""))
                found = self.mro_method(modname, cls, attr)
            else:
                resolved = self.resolve_class(cls)
                found = (
                    self.mro_method(resolved[0], resolved[1], attr)
                    if resolved
                    else None
                )
            return [found] if found else []
        target = str(call.get("target", ""))
        return self.resolve_name(target, depth)

    def resolve_name(self, dotted: str, depth: int = 0) -> List[str]:
        """Project function symbols a dotted name call points at."""
        if depth > 8 or not dotted:
            return []
        hit = self._resolve_module(dotted)
        if hit is None:
            return []
        summary, rest = hit
        if not rest:
            return []
        parts = rest.split(".")
        qual = ".".join(parts)
        if qual in summary.functions:
            return [f"{summary.modname}.{qual}"]
        head = parts[0]
        if head in summary.classes:
            if len(parts) == 1:
                # constructor: edges into __init__ / __post_init__
                out = []
                for ctor in ("__init__", "__post_init__"):
                    found = self.mro_method(summary.modname, head, ctor)
                    if found:
                        out.append(found)
                return out
            if len(parts) == 2:
                found = self.mro_method(summary.modname, head, parts[1])
                return [found] if found else []
            return []
        if head in summary.exports:
            target = summary.exports[head]
            if len(parts) > 1:
                target = f"{target}.{'.'.join(parts[1:])}"
            return self.resolve_name(target, depth + 1)
        return []

    # -- edges ---------------------------------------------------------

    @property
    def edges(self) -> Dict[str, List[Tuple[str, Dict[str, object]]]]:
        """caller symbol -> [(callee symbol, call record)], resolved."""
        if self._edges is None:
            self._edges = {}
            for symbol, (summary, info) in self.functions.items():
                out: List[Tuple[str, Dict[str, object]]] = []
                for call in info.calls:
                    record = call
                    if call.get("via") == "self" and "mod" not in call:
                        record = dict(call, mod=summary.modname)
                    for callee in self.resolve_call(record):
                        out.append((callee, call))
                self._edges[symbol] = out
        return self._edges

    def file_of(self, symbol: str) -> Optional[str]:
        entry = self.functions.get(symbol)
        return entry[0].relpath if entry else None

    def entry_symbols(self, patterns: Sequence[str]) -> List[str]:
        """Function symbols matching dotted-suffix entry patterns."""
        out = []
        for symbol in sorted(self.functions):
            for pattern in patterns:
                if symbol == pattern or symbol.endswith("." + pattern):
                    out.append(symbol)
                    break
        return out
