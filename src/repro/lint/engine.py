"""reprolint execution engine: file discovery, parsing, suppressions.

The engine is deliberately dependency-free (``ast`` + ``tokenize``):
it must run in CI before anything is installed and must never import
the code under analysis — a module whose *import* is broken still
lints.

Model:

* :class:`Module` — one parsed source file: AST, source lines, the
  per-line suppression table, and its path split into segments (rules
  scope themselves by directory segments such as ``core``/``metis``).
* :class:`Project` — every module of one lint run.  Cross-file rules
  (RL005 trace-format drift, RL008 registry completeness) read the
  whole project; per-module rules see one module at a time.
* :class:`Finding` — one diagnostic, with a stable
  ``file:line:col + rule id`` identity used by both reporters.

Suppressions are per line::

    risky_line()  # reprolint: disable=RL002 -- why this is safe

The rule ids listed after ``disable=`` are ignored for findings on
that physical line only; everything after ``--`` is a free-form
justification (required by convention, not enforced).

Recursive discovery skips directories named in :data:`EXCLUDED_DIRS`
(test fixture trees hold intentional violations); passing a path
explicitly always lints it.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import os
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

SEVERITY_ERROR = "error"
SEVERITY_ADVICE = "advice"

#: Directory names never entered during recursive discovery.
#: ``fixtures`` holds lint-test snippets that are *meant* to violate
#: rules; explicit path arguments still lint them.
EXCLUDED_DIRS = frozenset({"__pycache__", "fixtures", "build", "dist"})

#: ``# reprolint: disable=RL001,RL002 [-- justification]``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic with a stable file:line:col + rule identity."""

    path: str        #: file path relative to the lint root (posix)
    line: int        #: 1-based line
    col: int         #: 1-based column
    rule: str        #: rule id, e.g. ``"RL002"``
    severity: str    #: ``"error"`` or ``"advice"``
    message: str
    #: call-chain evidence for interprocedural findings (RL011):
    #: entry-point symbol first, tainted function last; empty otherwise
    chain: Tuple[str, ...] = ()

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.chain:
            out["chain"] = list(self.chain)
        return out


class Module:
    """One parsed source file plus its suppression table."""

    def __init__(self, abspath: str, relpath: str, text: str):
        self.abspath = abspath
        self.relpath = relpath.replace(os.sep, "/")
        self.text = text
        self.parts: Tuple[str, ...] = tuple(self.relpath.split("/"))
        self.basename = self.parts[-1]
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[Tuple[int, int, str]] = None
        try:
            self.tree = ast.parse(text, filename=self.relpath)
        except SyntaxError as exc:
            self.parse_error = (
                exc.lineno or 1,
                (exc.offset or 1) or 1,
                exc.msg or "invalid syntax",
            )
        self.disables: Dict[int, FrozenSet[str]] = (
            _parse_suppressions(text) if self.tree is not None else {}
        )
        self._summary = None

    @property
    def summary(self):
        """The module's :class:`~repro.lint.callgraph.ModuleSummary`.

        Built lazily from the AST (or pre-set by
        :meth:`from_cache`); None for files that do not parse.
        """
        if self._summary is None and self.tree is not None:
            from repro.lint.callgraph import build_summary

            self._summary = build_summary(self.relpath, self.tree)
        return self._summary

    @classmethod
    def from_cache(cls, abspath: str, relpath: str, summary, disables) -> "Module":
        """A module restored from the lint cache: summary + suppression
        table only, no source text and no AST (module rules skip it;
        its per-module findings come from the cache)."""
        module = cls.__new__(cls)
        module.abspath = abspath
        module.relpath = relpath.replace(os.sep, "/")
        module.text = None
        module.parts = tuple(module.relpath.split("/"))
        module.basename = module.parts[-1]
        module.tree = None
        module.parse_error = None
        module.disables = disables
        module._summary = summary
        return module

    def in_dirs(self, *names: str) -> bool:
        """True when any *directory* segment of the path matches."""
        return any(n in self.parts[:-1] for n in names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Module({self.relpath!r})"


class Project:
    """All modules of one lint run (the unit cross-file rules see)."""

    def __init__(self, modules: Sequence[Module]):
        self.modules: List[Module] = list(modules)
        self.by_relpath: Dict[str, Module] = {m.relpath: m for m in self.modules}

    @property
    def summaries(self):
        """Module summaries of every parseable module, in module order
        (the project rules' working set — cached or freshly built)."""
        return [m.summary for m in self.modules if m.summary is not None]


@dataclasses.dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: Tuple[Finding, ...]   #: kept findings, sorted
    suppressed: int                 #: findings removed by disable comments
    files: int                      #: modules linted
    #: incremental-cache statistics when the run used the cache
    #: (``hit``/``parsed``/``impacted`` counts plus the file lists);
    #: None for uncached runs
    cache_stats: Optional[Dict[str, object]] = None

    @property
    def errors(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == SEVERITY_ERROR)

    @property
    def advice(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == SEVERITY_ADVICE)

    @property
    def exit_code(self) -> int:
        """0 when clean; advice never fails a run."""
        return 1 if self.errors else 0

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-ready form (the ``--format json`` schema)."""
        out: Dict[str, object] = {
            "schema": "reprolint/2",
            "files": self.files,
            "findings": [f.to_dict() for f in self.findings],
            "counts": {
                "error": len(self.errors),
                "advice": len(self.advice),
                "suppressed": self.suppressed,
            },
            "exit": self.exit_code,
        }
        if self.cache_stats is not None:
            out["cache"] = {
                "hit": self.cache_stats.get("hit", 0),
                "parsed": self.cache_stats.get("parsed", 0),
                "impacted": self.cache_stats.get("impacted", 0),
            }
        return out


def _parse_suppressions(text: str) -> Dict[int, FrozenSet[str]]:
    """line -> rule ids disabled on that line.

    Tokenizes rather than regexing raw lines so a ``# reprolint:``
    sequence inside a string literal is not mistaken for a directive.
    """
    disables: Dict[int, set] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                ids = {
                    part.strip().upper()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                disables.setdefault(tok.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # the AST parsed, so this is a tokenize corner case; findings
        # simply cannot be suppressed in this file
        return {}
    return {line: frozenset(ids) for line, ids in disables.items()}


def collect_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` (absolute, sorted, deduplicated).

    Directories are walked recursively, skipping hidden directories
    and :data:`EXCLUDED_DIRS`; explicitly named files are always
    included.  Unknown paths raise ``FileNotFoundError``.
    """
    out: List[str] = []
    for path in paths:
        abspath = os.path.abspath(os.fspath(path))
        if os.path.isfile(abspath):
            out.append(abspath)
        elif os.path.isdir(abspath):
            for dirpath, dirnames, filenames in os.walk(abspath):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in EXCLUDED_DIRS and not d.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        out.append(os.path.join(dirpath, filename))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(out))


def _lint_root(files: Sequence[str], paths: Sequence[str]) -> str:
    """Directory findings are reported relative to.

    The common ancestor of the *arguments* (not the files), so
    ``python -m repro.lint src tests`` reports ``src/...`` and
    ``tests/...`` regardless of the current directory.
    """
    bases = []
    for path in paths:
        abspath = os.path.abspath(os.fspath(path))
        bases.append(os.path.dirname(abspath) if os.path.isfile(abspath) else abspath)
    if not bases:
        return os.getcwd()
    root = os.path.commonpath(bases)
    # one directory argument: keep its *parent* so path segments like
    # "core" stay visible to scoped rules when linting e.g. src/repro/core
    if len(set(bases)) == 1 and os.path.isdir(bases[0]):
        parent = os.path.dirname(root)
        return parent or root
    return root


def load_project(paths: Sequence[str]) -> Project:
    """Parse every Python file reachable from ``paths``."""
    files = collect_files(paths)
    root = _lint_root(files, paths)
    modules = []
    for abspath in files:
        with open(abspath, "r", encoding="utf-8") as f:
            text = f.read()
        relpath = os.path.relpath(abspath, root)
        modules.append(Module(abspath, relpath, text))
    return Project(modules)


def lint_project(
    project: Project, select: Optional[Iterable[str]] = None
) -> LintReport:
    """Run (optionally a subset of) the rules over a loaded project."""
    from repro.lint.rules import active_rules

    findings: List[Finding] = []
    for module in project.modules:
        if module.parse_error is not None:
            line, col, msg = module.parse_error
            findings.append(
                Finding(
                    path=module.relpath,
                    line=line,
                    col=col,
                    rule="RL000",
                    severity=SEVERITY_ERROR,
                    message=f"file does not parse: {msg}",
                )
            )
    for rule in active_rules(select):
        findings.extend(rule.run(project))

    kept, suppressed = apply_suppressions(findings, project.by_relpath)
    return LintReport(
        findings=tuple(sorted(kept)),
        suppressed=suppressed,
        files=len(project.modules),
    )


def apply_suppressions(
    findings: Iterable[Finding], by_relpath: Dict[str, Module]
) -> Tuple[List[Finding], int]:
    """(kept findings, suppressed count) after the disable tables."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        module = by_relpath.get(finding.path)
        disabled = module.disables.get(finding.line, frozenset()) if module else frozenset()
        if finding.rule in disabled:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    use_cache: bool = False,
    cache_path: Optional[str] = None,
    changed_only: bool = False,
) -> LintReport:
    """Lint the given files/directories; the library entry point.

    With ``use_cache`` (the CLI default), unchanged files are restored
    from the content-hash cache (see :mod:`repro.lint.cache`) instead
    of being re-parsed; ``--select`` runs always bypass the cache so a
    partial rule set never poisons cached full-run findings.
    """
    if use_cache and select is None:
        from repro.lint.cache import lint_paths_cached

        return lint_paths_cached(
            paths, cache_path=cache_path, changed_only=changed_only
        )
    return lint_project(load_project(paths), select=select)
