"""``reprolint`` — AST-based determinism & trace-safety linter.

Every headline result in this reproduction is a *bit-identity* claim:
warm vs cold METIS, trace-sourced vs synthetic sweeps, ``jobs=1`` vs
``jobs=N`` all assert byte-equal outputs.  Those claims rest on
invariants no test exercises directly — seeded RNGs only, order-stable
iteration in assignment paths, no wall-clock in replay, writer/reader
agreement on the rctrace section tables.  ``reprolint`` checks them
statically, so refactors of the hot paths (batch kernels, streaming
ingestion) cannot silently break determinism before a test notices.

Run it over the repo (CI gates on exit 0)::

    python -m repro.lint src tests benchmarks examples
    python -m repro.lint src --format json       # machine-readable
    python -m repro.lint --list-rules            # rule reference

Suppress an intentional violation on its own line, with a reason::

    vals = list(tags)  # reprolint: disable=RL002 -- order-insensitive sum

Rules (see ``docs/lint_rules.md`` for examples and rationale):

====== ===================== ========= =========================================
id     name                  severity  checks
====== ===================== ========= =========================================
RL001  unseeded-random       error     process-global ``random.*`` calls instead
                                       of an injected ``random.Random(seed)``
RL002  unsorted-set-iter     error     iterating sets / dict views without
                                       ``sorted()`` in assignment/cache-key code
                                       (``core/``, ``metis/``, ``experiments/``)
RL003  wall-clock            error     ``time.time()`` / ``datetime.now()``
                                       inside replay/partitioning/trace code
RL004  float-equality        error     float ``==``/``!=`` in ``metrics/``
RL005  rctrace-drift         error     writer/reader disagreement in the rctrace
                                       struct formats, section tables & enc tags
RL006  mutable-default       error     mutable default argument values
RL007  broad-except          error     bare/broad ``except`` without re-raise
                                       (can swallow ``TraceFormatError``)
RL008  registry-complete     error     every ``PartitionMethod`` subclass is
                                       registered with an introspectable factory
RL009  frozen-spec-mutation  error     attribute assignment on frozen spec
                                       objects outside ``__init__``/``replace``
RL010  rowwise-interaction   advice    per-row ``Interaction`` attribute access
                                       in loops of the batch-kernel target
                                       modules named by the ROADMAP
RL011  transitive-taint      error     wall-clock/unseeded-RNG reads *reachable*
                                       from the replay entry points through the
                                       project call graph (chain as evidence)
RL012  pool-boundary         error     lambdas, nested functions, open handles
                                       and buffer-backed ColumnarLogs crossing
                                       ``ProcessPoolExecutor.submit``; unguarded
                                       ``_FORK_SHARED`` readers
RL013  store-identity        error     spec dataclass fields that do not flow
                                       into the ``label()``/``store_id()``/
                                       ``identity`` store-key payload
====== ===================== ========= =========================================

``advice``-level findings are reported but never affect the exit code;
they mark planned optimisation sites, not defects.  ``RL000`` is
reserved for files that fail to parse.

RL011–RL013 are interprocedural: they run on a whole-project symbol
table and call graph (:mod:`repro.lint.callgraph`,
:mod:`repro.lint.dataflow`).  Runs are incremental by default — see
:mod:`repro.lint.cache` and ``docs/lint_internals.md``.
"""

from __future__ import annotations

from repro.lint.engine import (
    SEVERITY_ADVICE,
    SEVERITY_ERROR,
    Finding,
    LintReport,
    Module,
    Project,
    lint_paths,
)
from repro.lint.rules import Rule, all_rules, get_rule

__all__ = [
    "Finding",
    "LintReport",
    "Module",
    "Project",
    "Rule",
    "SEVERITY_ADVICE",
    "SEVERITY_ERROR",
    "all_rules",
    "get_rule",
    "lint_paths",
]
