"""Taint propagation and dependency closures over the call graph.

Three small, deliberately conservative analyses power the
interprocedural rules:

* :func:`reachable_taints` — BFS from the replay/partitioning entry
  points along resolved call edges; every nondeterminism source
  (wall-clock read, unseeded randomness) found in a reachable function
  is reported with the *shortest* call chain from an entry as evidence
  (RL011).  Cycles terminate because BFS never revisits a symbol.
* :func:`fork_shared_readers` — the set of functions that read the
  ``_FORK_SHARED`` module global directly or through any chain of
  project calls; submitting one of these to a process pool is only
  sound under the ``fork`` start method (RL012).
* :func:`file_closure` / :func:`reverse_file_closure` — file-level
  projections of the call graph used by the incremental cache: when a
  file changes, every file whose functions (transitively) call into it
  must be re-checked for the interprocedural rules.

All traversals are monotone over an over-approximated edge set that
only ever *misses* dynamic edges, so a clean report is trustworthy for
the call shapes the resolver understands, and cycles or unresolvable
calls degrade to silence, never to spurious chains.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.callgraph import CallGraph


def shortest_chains(
    graph: CallGraph, entries: Sequence[str]
) -> Dict[str, Tuple[str, ...]]:
    """symbol -> shortest call chain (entry, ..., symbol) reaching it.

    Plain BFS over resolved edges, seeded with every entry symbol in
    order; earlier entries win ties so chains are deterministic.
    """
    chains: Dict[str, Tuple[str, ...]] = {}
    queue: deque = deque()
    for entry in entries:
        if entry not in chains and entry in graph.functions:
            chains[entry] = (entry,)
            queue.append(entry)
    while queue:
        symbol = chains_key = queue.popleft()
        chain = chains[chains_key]
        for callee, _call in graph.edges.get(symbol, ()):
            if callee not in chains:
                chains[callee] = chain + (callee,)
                queue.append(callee)
    return chains


def reachable_taints(
    graph: CallGraph, entry_patterns: Sequence[str]
) -> List[Dict[str, object]]:
    """Nondeterminism sources reachable from the entry points.

    Returns one record per distinct tainted call site::

        {"relpath", "line", "col", "kind", "label", "chain"}

    where ``chain`` is the shortest entry→…→function symbol path and
    the site itself is the bad call inside the final function.
    """
    entries = graph.entry_symbols(entry_patterns)
    chains = shortest_chains(graph, entries)
    seen: Set[Tuple[str, int, int, str]] = set()
    out: List[Dict[str, object]] = []
    for symbol in sorted(chains, key=lambda s: (len(chains[s]), s)):
        summary, info = graph.functions[symbol]
        for bad in info.bad_calls:
            key = (summary.relpath, int(bad["line"]), int(bad["col"]), str(bad["label"]))
            if key in seen:
                continue
            seen.add(key)
            out.append(
                {
                    "relpath": summary.relpath,
                    "line": int(bad["line"]),
                    "col": int(bad["col"]),
                    "kind": str(bad["kind"]),
                    "label": str(bad["label"]),
                    "chain": chains[symbol],
                }
            )
    out.sort(key=lambda r: (r["relpath"], r["line"], r["col"], r["label"]))
    return out


def fork_shared_readers(graph: CallGraph) -> Set[str]:
    """Function symbols that reach a ``_FORK_SHARED`` read.

    Computed as the reverse closure of the direct readers: a function
    taints its callers, because submitting *any* frame above the read
    to a non-fork worker ships a function whose behaviour depends on
    fork-inherited state.
    """
    callers: Dict[str, Set[str]] = {}
    for caller, edges in graph.edges.items():
        for callee, _call in edges:
            callers.setdefault(callee, set()).add(caller)
    tainted: Set[str] = {
        symbol
        for symbol, (_summary, info) in graph.functions.items()
        if info.reads_fork_shared
    }
    queue = deque(tainted)
    while queue:
        symbol = queue.popleft()
        for caller in callers.get(symbol, ()):
            if caller not in tainted:
                tainted.add(caller)
                queue.append(caller)
    return tainted


def file_dependencies(graph: CallGraph) -> Dict[str, Set[str]]:
    """relpath -> relpaths of files it *directly* calls into."""
    deps: Dict[str, Set[str]] = {s.relpath: set() for s in graph.summaries}
    for caller, edges in graph.edges.items():
        src = graph.file_of(caller)
        if src is None:
            continue
        for callee, _call in edges:
            dst = graph.file_of(callee)
            if dst is not None and dst != src:
                deps[src].add(dst)
    return deps


def file_closure(deps: Dict[str, Set[str]], start: str) -> Set[str]:
    """Forward closure: every file ``start`` transitively calls into."""
    out: Set[str] = set()
    queue = deque([start])
    while queue:
        relpath = queue.popleft()
        for dep in deps.get(relpath, ()):
            if dep not in out:
                out.add(dep)
                queue.append(dep)
    out.discard(start)
    return out


def reverse_file_closure(
    deps: Dict[str, Set[str]], changed: Set[str]
) -> Set[str]:
    """Files whose analysis may shift when ``changed`` files change.

    The reverse closure of the file-dependency relation: a caller's
    interprocedural findings depend on its callees' summaries, so every
    transitive caller of a changed file is impacted (the changed files
    themselves are included).
    """
    callers: Dict[str, Set[str]] = {}
    for src, dsts in deps.items():
        for dst in dsts:
            callers.setdefault(dst, set()).add(src)
    impacted: Set[str] = set(changed)
    queue = deque(changed)
    while queue:
        relpath = queue.popleft()
        for caller in callers.get(relpath, ()):
            if caller not in impacted:
                impacted.add(caller)
                queue.append(caller)
    return impacted
