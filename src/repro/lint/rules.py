"""The reprolint rule set (RL001–RL010).

Each rule is a small AST visitor registered in :data:`RULES`.  Two
shapes exist:

* **module rules** implement :meth:`Rule.check_module` and see one
  parsed file at a time (optionally scoped to directory segments via
  :meth:`Rule.applies`);
* **project rules** override :meth:`Rule.run` and see every module of
  the lint run at once — RL005 cross-checks the rctrace writer/reader
  constants wherever they live, RL008 joins the ``PartitionMethod``
  class hierarchy against the registry.

Rules never *import* the code under analysis; everything is derived
from source text, so a module with a broken import still lints and the
linter cannot be confused by runtime monkey-patching.

Severity is ``error`` (gates CI) or ``advice`` (reported, never fails
the run — used for planned-optimisation markers like RL010).
"""

from __future__ import annotations

import ast
import struct
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.lint.engine import (
    SEVERITY_ADVICE,
    SEVERITY_ERROR,
    Finding,
    Module,
    Project,
)

RULES: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the registry (keyed by id)."""
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def all_rules() -> List["Rule"]:
    """One instance of every registered rule, in id order."""
    return [RULES[rule_id]() for rule_id in sorted(RULES)]


def get_rule(rule_id: str) -> "Rule":
    try:
        return RULES[rule_id.upper()]()
    except KeyError:
        raise ValueError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}"
        ) from None


def active_rules(select: Optional[Iterable[str]] = None) -> List["Rule"]:
    if select is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in select]


class Rule:
    """Base class; subclasses set the metadata and one check method."""

    id: str = "RL000"
    name: str = "abstract"
    severity: str = SEVERITY_ERROR
    #: project rules override :meth:`run` and work from the whole
    #: project's *module summaries* — never from per-file ASTs — so
    #: the incremental cache can rerun them without re-parsing
    #: unchanged files; module rules are cached per file instead
    project_rule: bool = False
    #: one-line rationale (surfaced by ``--list-rules`` and the docs)
    rationale: str = ""
    #: minimal example violation, for the docs table
    example: str = ""

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.tree is None or not self.applies(module):
                continue
            yield from self.check_module(module)

    def applies(self, module: Module) -> bool:
        return True

    def check_module(self, module: Module) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )

    def finding_at(
        self,
        relpath: str,
        line: int,
        col_offset: int,
        message: str,
        chain: Tuple[str, ...] = (),
    ) -> Finding:
        """A finding anchored by summary coordinates (0-based column),
        for project rules that no longer hold an AST node."""
        return Finding(
            path=relpath,
            line=line,
            col=col_offset + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
            chain=chain,
        )


# ----------------------------------------------------------------------
# shared AST helpers


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, Tuple[str, str]]]:
    """(module aliases, from-import aliases) of a file.

    ``import random as rnd`` -> ``{"rnd": "random"}``;
    ``from random import randint as ri`` -> ``{"ri": ("random", "randint")}``.
    """
    modules: Dict[str, str] = {}
    names: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                names[alias.asname or alias.name] = (node.module, alias.name)
    return modules, names


def _resolved_call_name(
    node: ast.Call,
    modules: Dict[str, str],
    names: Dict[str, Tuple[str, str]],
) -> Optional[str]:
    """The fully-qualified dotted name a call resolves to, via imports.

    ``rnd.randint(...)`` -> ``random.randint``;
    ``now()`` after ``from datetime import datetime as now``… resolves
    through the alias table.  None when the callee is not a plain
    Name/Attribute chain.
    """
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in modules:
        base = modules[head]
        return f"{base}.{rest}" if rest else base
    if head in names:
        mod, orig = names[head]
        qualified = f"{mod}.{orig}"
        return f"{qualified}.{rest}" if rest else qualified
    return dotted


def _func_scopes(tree: ast.Module) -> Iterator[Tuple[Optional[ast.AST], List[ast.stmt]]]:
    """(scope node, body) for the module and every function in it."""
    yield None, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _walk_shallow(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes.

    Nested function/lambda nodes are yielded (so callers can see them)
    but their bodies are not entered — :func:`_func_scopes` hands each
    function body to its own pass, and descending here would double
    -report every finding inside it.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# RL001 — unseeded randomness


@register
class UnseededRandom(Rule):
    id = "RL001"
    name = "unseeded-random"
    rationale = (
        "the module-level random.* functions share one process-global "
        "RNG seeded from OS entropy; replay determinism requires every "
        "stochastic decision to flow from an injected random.Random(seed)"
    )
    example = "jitter = random.random()"

    #: attributes of the random module that are deterministic to touch
    _ALLOWED = frozenset({"Random"})

    def check_module(self, module: Module) -> Iterator[Finding]:
        modules, names = _import_aliases(module.tree)
        random_aliases = {a for a, m in modules.items() if m == "random"}
        rng_names = self._rng_instance_names(module.tree, modules, names)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in random_aliases
                    and node.attr not in self._ALLOWED
                ):
                    yield self.finding(
                        module,
                        node,
                        f"random.{node.attr} uses the process-global RNG; "
                        "inject a seeded random.Random(seed) instead",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                origin = names.get(node.id)
                if origin and origin[0] == "random" and origin[1] not in self._ALLOWED:
                    yield self.finding(
                        module,
                        node,
                        f"random.{origin[1]} (imported as {node.id}) uses the "
                        "process-global RNG; inject a seeded "
                        "random.Random(seed) instead",
                    )
            elif isinstance(node, ast.Call):
                callee = _resolved_call_name(node, modules, names)
                if callee == "random.Random" and not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed draws from OS "
                        "entropy; pass an explicit seed",
                    )
                elif self._is_argless_reseed(node, rng_names, modules, names):
                    yield self.finding(
                        module,
                        node,
                        ".seed() with no arguments reseeds the RNG from "
                        "OS entropy; pass an explicit seed",
                    )

    def _rng_instance_names(self, tree, modules, names) -> Set[str]:
        """Names bound to ``random.Random(...)`` instances anywhere in
        the file (scope-insensitive on purpose: a false merge would
        only matter if the same name were also a non-RNG with a
        ``.seed()`` method, which does not occur in practice)."""
        rng: Set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and _resolved_call_name(node.value, modules, names) == "random.Random"
            ):
                rng.add(node.targets[0].id)
        return rng

    def _is_argless_reseed(self, node: ast.Call, rng_names, modules, names) -> bool:
        """``rng.seed()`` / ``random.Random(x).seed()`` with no args.

        Note ``random.seed()`` (the module-global) is already flagged by
        the attribute branch above; this closes the *instance* gap.
        """
        if node.args or node.keywords:
            return False
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "seed"):
            return False
        receiver = node.func.value
        if isinstance(receiver, ast.Name):
            return receiver.id in rng_names
        if isinstance(receiver, ast.Call):
            return _resolved_call_name(receiver, modules, names) == "random.Random"
        return False


# ----------------------------------------------------------------------
# RL002 — nondeterministic iteration


_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _SetTypeInference:
    """Conservative set-typed-expression inference for one scope."""

    def __init__(self, body: Sequence[ast.stmt]):
        self.set_names: Set[str] = set()
        self.dict_names: Set[str] = set()
        for node in _walk_shallow(body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self.is_setlike(node.value):
                        self.set_names.add(target.id)
                    elif self.is_dictlike(node.value):
                        self.dict_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                annotation = _dotted(node.annotation) or ""
                if annotation.split(".")[-1] in ("set", "Set", "FrozenSet", "frozenset"):
                    self.set_names.add(node.target.id)

    def is_setlike(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_setlike(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_setlike(node.left) or self.is_setlike(node.right)
        return False

    def is_dictlike(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.dict_names
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("dict", "defaultdict", "OrderedDict", "Counter")
        return False

    def is_unordered_iter(self, node: ast.AST) -> bool:
        """True for an expression whose iteration order is hash-driven."""
        if self.is_setlike(node):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items")
            and self.is_setlike(node.func.value)
        ):
            return True  # pragma: no cover - sets have no keys(); defensive
        return False


@register
class UnsortedSetIteration(Rule):
    id = "RL002"
    name = "unsorted-set-iter"
    rationale = (
        "set iteration order depends on PYTHONHASHSEED and insertion "
        "history; in the modules that feed shard assignments and cache "
        "keys it must pass through sorted() to keep replays bit-identical"
    )
    example = "for v in {dst for _, dst in edges}: place(v)"

    _SCOPES = ("core", "metis", "experiments")
    _MATERIALISERS = frozenset({"list", "tuple", "enumerate"})
    #: calls whose result does not depend on argument iteration order,
    #: so a comprehension they consume directly is deterministic even
    #: over a set (``sorted(x.label for x in unknown_set)``)
    _ORDER_INSENSITIVE = frozenset(
        {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
    )

    def applies(self, module: Module) -> bool:
        return module.in_dirs(*self._SCOPES)

    def check_module(self, module: Module) -> Iterator[Finding]:
        for _scope, body in _func_scopes(module.tree):
            inference = _SetTypeInference(body)
            exempt = self._order_insensitive_args(body)
            for node in _walk_shallow(body):
                if id(node) in exempt:
                    continue
                for iter_expr in self._iteration_exprs(node):
                    if inference.is_unordered_iter(iter_expr):
                        yield self.finding(
                            module,
                            iter_expr,
                            "iterating a set here is ordered by "
                            "PYTHONHASHSEED, not by value; wrap it in "
                            "sorted() (or iterate a deterministic source)",
                        )

    def _iteration_exprs(self, node: ast.AST) -> Iterator[ast.AST]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in self._MATERIALISERS and node.args:
                yield node.args[0]
        elif isinstance(node, ast.Starred):
            yield node.value

    def _order_insensitive_args(self, body: Sequence[ast.stmt]) -> Set[int]:
        """ids of comprehension nodes fed straight into sorted()/any()/…"""
        exempt: Set[int] = set()
        comp_types = (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        for node in _walk_shallow(body):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_INSENSITIVE
            ):
                for arg in node.args:
                    if isinstance(arg, comp_types):
                        exempt.add(id(arg))
        return exempt


# ----------------------------------------------------------------------
# RL003 — wall-clock reads


@register
class WallClock(Rule):
    id = "RL003"
    name = "wall-clock"
    rationale = (
        "replay and partitioning decisions must be functions of the "
        "trace, never of when the code runs; wall-clock reads make "
        "results unreproducible (duration *measurement* belongs in "
        "benchmarks, via time.perf_counter)"
    )
    example = "cutoff = time.time() - 3600"

    _SCOPES = ("core", "metis", "graph", "experiments", "sharding")
    _BANNED = {
        "time.time": "time.time()",
        "time.time_ns": "time.time_ns()",
        "datetime.datetime.now": "datetime.now()",
        "datetime.datetime.utcnow": "datetime.utcnow()",
        "datetime.datetime.today": "datetime.today()",
        "datetime.date.today": "date.today()",
    }

    def applies(self, module: Module) -> bool:
        return module.in_dirs(*self._SCOPES)

    def check_module(self, module: Module) -> Iterator[Finding]:
        modules, names = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _resolved_call_name(node, modules, names)
            if callee in self._BANNED:
                yield self.finding(
                    module,
                    node,
                    f"{self._BANNED[callee]} reads the wall clock inside "
                    "replay/partitioning code; derive times from the "
                    "trace (or time.perf_counter for durations)",
                )


# ----------------------------------------------------------------------
# RL004 — float equality in metrics


@register
class FloatEquality(Rule):
    id = "RL004"
    name = "float-equality"
    rationale = (
        "metrics are ratios of accumulated floats; == / != on them "
        "flips with benign reorderings — compare with a tolerance "
        "(math.isclose) or restructure around exact integer counts"
    )
    example = "if balance == 1.0: ..."

    _SCOPES = ("metrics",)
    #: test/bench files assert *bit-identity* on purpose — exact float
    #: equality is their whole point — so the rule covers production
    #: metrics code only
    _EXEMPT_PREFIXES = ("test_", "bench_", "conftest")

    def applies(self, module: Module) -> bool:
        return module.in_dirs(*self._SCOPES) and not module.basename.startswith(
            self._EXEMPT_PREFIXES
        )

    def check_module(self, module: Module) -> Iterator[Finding]:
        for _scope, body in _func_scopes(module.tree):
            float_names: Set[str] = set()
            for node in _walk_shallow(body):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and self._floaty(node.value, float_names):
                        float_names.add(target.id)
            for node in _walk_shallow(body):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left] + list(node.comparators)
                for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if self._floaty(lhs, float_names) or self._floaty(rhs, float_names):
                        yield self.finding(
                            module,
                            node,
                            "float == / != comparison in metrics code; "
                            "use math.isclose / an explicit tolerance, or "
                            "compare the underlying integer counts",
                        )
                        break

    def _floaty(self, node: ast.AST, float_names: Set[str]) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in float_names
        if isinstance(node, ast.UnaryOp):
            return self._floaty(node.operand, float_names)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._floaty(node.left, float_names) or self._floaty(
                node.right, float_names
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "float"
        return False


# ----------------------------------------------------------------------
# RL005 — rctrace format drift (project rule)


class _Struct:
    """Marker for ``struct.Struct("<fmt>")`` constants in the mini-eval."""

    def __init__(self, fmt: str):
        self.fmt = fmt

    @property
    def size(self) -> int:
        return struct.calcsize(self.fmt)


class _Unevaluable(Exception):
    pass


def _const_eval(node: ast.AST, env: Dict[str, object]) -> object:
    """Literal evaluator over module constants (tuples, dicts, names)."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_const_eval(elt, env) for elt in node.elts)
    if isinstance(node, ast.Dict):
        return {
            _const_eval(k, env): _const_eval(v, env)
            for k, v in zip(node.keys, node.values)
            if k is not None
        }
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        raise _Unevaluable(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = _const_eval(node.operand, env)
        if isinstance(operand, (int, float)):
            return -operand
        raise _Unevaluable("usub")
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func) or ""
        if dotted.split(".")[-1] == "Struct" and len(node.args) == 1:
            fmt = _const_eval(node.args[0], env)
            if isinstance(fmt, str):
                try:
                    struct.calcsize(fmt)
                except struct.error as exc:
                    raise _Unevaluable(f"bad struct format: {exc}") from exc
                return _Struct(fmt)
        if dotted == "frozenset" and len(node.args) <= 1:
            arg = _const_eval(node.args[0], env) if node.args else ()
            if isinstance(arg, tuple):
                return frozenset(arg)
    raise _Unevaluable(ast.dump(node)[:40])


def _eval_encoded(enc: Dict[str, object], env: Dict[str, object]) -> object:
    """Evaluate a summary-encoded const expression (see
    :func:`repro.lint.callgraph.encode_const`) against ``env``.

    Same semantics as :func:`_const_eval`, but over the serialized form
    so cached summaries can replay the evaluation without an AST.
    """
    kind, value = enc["k"], enc["v"]
    if kind == "c":
        return value
    if kind == "t":
        return tuple(_eval_encoded(e, env) for e in value)
    if kind == "d":
        return {
            _eval_encoded(k, env): _eval_encoded(v, env) for k, v in value
        }
    if kind == "n":
        if value in env:
            return env[value]
        raise _Unevaluable(value)
    if kind == "neg":
        operand = _eval_encoded(value, env)
        if isinstance(operand, (int, float)):
            return -operand
        raise _Unevaluable("usub")
    if kind == "struct":
        fmt = _eval_encoded(value, env)
        if isinstance(fmt, str):
            try:
                struct.calcsize(fmt)
            except struct.error as exc:
                raise _Unevaluable(f"bad struct format: {exc}") from exc
            return _Struct(fmt)
        raise _Unevaluable("struct")
    if kind == "fs":
        arg = _eval_encoded(value, env)
        if isinstance(arg, tuple):
            return frozenset(arg)
        raise _Unevaluable("frozenset")
    raise _Unevaluable(str(kind))


@register
class TraceFormatDrift(Rule):
    id = "RL005"
    name = "rctrace-drift"
    rationale = (
        "the rctrace writer and readers share byte-layout contracts "
        "(64-byte header, 12-byte section entries, the v2/v3 section "
        "tables and encoding tags); editing one side without the other "
        "produces traces that misload silently on old readers"
    )
    example = '_SECTION_ENTRY = struct.Struct("<BBHQQ")  # no longer 12 bytes'

    project_rule = True

    #: the byte-layout contracts (module docstring of repro.graph.io)
    _HEADER_BYTES = 64
    _SECTION_ENTRY_BYTES = 12
    _V3_TABLE_NAME = "_V3_SECTIONS"
    _V2_TABLE_NAME = "_ROW_SECTIONS"

    def run(self, project: Project) -> Iterator[Finding]:
        env: Dict[str, object] = {}
        anchors: Dict[str, Tuple[str, int, int]] = {}
        for summary in project.summaries:
            for name, encoded, line, col in summary.consts:
                try:
                    value = _eval_encoded(encoded, env)
                except _Unevaluable:
                    continue
                env[name] = value
                anchors[name] = (summary.relpath, line, col)

        def at(name: str, message: str) -> Finding:
            relpath, line, col = anchors[name]
            return self.finding_at(relpath, line, col, message)

        yield from self._check_structs(env, at)
        yield from self._check_tags(env, at)
        yield from self._check_tables(env, at)

    def _check_structs(self, env, at) -> Iterator[Finding]:
        header = env.get("_HEADER")
        if isinstance(header, _Struct) and header.size != self._HEADER_BYTES:
            yield at(
                "_HEADER",
                f"header struct format {header.fmt!r} packs {header.size} "
                f"bytes; the rctrace header contract is "
                f"{self._HEADER_BYTES} bytes (readers seek past a fixed "
                "64-byte header)",
            )
        entry = env.get("_SECTION_ENTRY")
        if isinstance(entry, _Struct) and entry.size != self._SECTION_ENTRY_BYTES:
            yield at(
                "_SECTION_ENTRY",
                f"v3 section-table entry format {entry.fmt!r} packs "
                f"{entry.size} bytes; readers stride the table in "
                f"{self._SECTION_ENTRY_BYTES}-byte entries",
            )

    def _check_tags(self, env, at) -> Iterator[Finding]:
        tags = {
            name: value
            for name, value in env.items()
            if name.startswith("ENC_") and isinstance(value, int)
        }
        by_value: Dict[int, List[str]] = {}
        for name, value in sorted(tags.items()):
            by_value.setdefault(value, []).append(name)
        for value, names in sorted(by_value.items()):
            if len(names) > 1:
                yield at(
                    names[1],
                    f"encoding tags {' and '.join(names)} share value "
                    f"{value}; a reader cannot distinguish the sections "
                    "they mark",
                )
        enc_names = env.get("_ENC_NAMES")
        if isinstance(enc_names, dict):
            for name, value in sorted(tags.items()):
                if value not in enc_names:
                    yield at(
                        name,
                        f"encoding tag {name}={value} has no entry in "
                        "_ENC_NAMES; reader diagnostics would report it "
                        "as 'unknown'",
                    )

    def _check_tables(self, env, at) -> Iterator[Finding]:
        v3 = env.get(self._V3_TABLE_NAME)
        v3_ok = False
        if isinstance(v3, tuple):
            v3_ok = True
            seen: Set[str] = set()
            for entry in v3:
                if not (isinstance(entry, tuple) and len(entry) == 5):
                    yield at(
                        self._V3_TABLE_NAME,
                        f"{self._V3_TABLE_NAME} entry {entry!r} is not a "
                        "(name, typecode, itemsize, allowed tags, default "
                        "tag) 5-tuple",
                    )
                    v3_ok = False
                    continue
                name, typecode, itemsize, allowed, default = entry
                if name in seen:
                    yield at(
                        self._V3_TABLE_NAME,
                        f"duplicate section name {name!r} in "
                        f"{self._V3_TABLE_NAME}",
                    )
                seen.add(name)
                try:
                    actual = struct.calcsize(f"<{typecode}")
                except (struct.error, TypeError):
                    actual = None
                if actual is not None and actual != itemsize:
                    yield at(
                        self._V3_TABLE_NAME,
                        f"section {name!r} declares itemsize {itemsize} "
                        f"but typecode {typecode!r} packs {actual} "
                        "byte(s); size-derived offsets will drift",
                    )
                if not isinstance(allowed, (tuple, frozenset)):
                    continue
                if default not in allowed:
                    yield at(
                        self._V3_TABLE_NAME,
                        f"section {name!r} writes encoding tag {default} "
                        f"by default but the reader only accepts "
                        f"{sorted(allowed)} — written traces would be "
                        "rejected on load",
                    )
                enc_names = env.get("_ENC_NAMES")
                if isinstance(enc_names, dict):
                    for tag in sorted(set(allowed) | {default}):
                        if tag not in enc_names:
                            yield at(
                                self._V3_TABLE_NAME,
                                f"section {name!r} references encoding "
                                f"tag {tag} which is not a defined "
                                "encoding (_ENC_NAMES)",
                            )
        v2 = env.get(self._V2_TABLE_NAME)
        if isinstance(v2, tuple) and v3_ok and isinstance(v3, tuple):
            v3_rows = [
                entry[:3]
                for entry in v3
                if isinstance(entry, tuple) and len(entry) == 5 and entry[0] != "vertex_ids"
            ]
            v2_rows = [entry for entry in v2 if isinstance(entry, tuple)]
            if [r[0] for r in v2_rows] != [r[0] for r in v3_rows]:
                yield at(
                    self._V2_TABLE_NAME,
                    f"v2 row sections {[r[0] for r in v2_rows]} disagree "
                    f"with the v3 section table "
                    f"{[r[0] for r in v3_rows]} (order and names must "
                    "match for lossless v2<->v3 conversion)",
                )
            else:
                for v2_row, v3_row in zip(v2_rows, v3_rows):
                    if tuple(v2_row) != tuple(v3_row):
                        yield at(
                            self._V2_TABLE_NAME,
                            f"section {v2_row[0]!r}: v2 declares "
                            f"{tuple(v2_row[1:])}, v3 declares "
                            f"{tuple(v3_row[1:])} (typecode/itemsize "
                            "must agree across format versions)",
                        )


# ----------------------------------------------------------------------
# RL006 — mutable default arguments


@register
class MutableDefault(Rule):
    id = "RL006"
    name = "mutable-default"
    rationale = (
        "a mutable default is evaluated once and shared across calls — "
        "state leaks between replays and between experiment cells"
    )
    example = "def run(self, extras=[]): ..."

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
    )
    #: RNG constructors: a `= random.Random(seed)` default is *worse*
    #: than a plain mutable container — the one shared instance carries
    #: generator state across calls, so results depend on call order
    #: within the process even though every call looks seeded
    _RNG_CALLS = frozenset({"Random", "SystemRandom", "default_rng"})

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if self._rng_state(default):
                    yield self.finding(
                        module,
                        default,
                        "RNG default argument holds generator state shared "
                        "across calls — results depend on call order even "
                        "with a seed; default to None and construct the "
                        "seeded instance inside the function",
                    )
                elif self._mutable(default):
                    yield self.finding(
                        module,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and create the value inside the "
                        "function",
                    )

    def _mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func) or ""
            return dotted.split(".")[-1] in self._MUTABLE_CALLS
        return False

    def _rng_state(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = _dotted(node.func) or ""
        return dotted.split(".")[-1] in self._RNG_CALLS


# ----------------------------------------------------------------------
# RL007 — broad except that can swallow TraceFormatError


@register
class BroadExcept(Rule):
    id = "RL007"
    name = "broad-except"
    rationale = (
        "a bare/broad except without a re-raise can swallow "
        "TraceFormatError (and KeyboardInterrupt), turning a corrupt "
        "trace into silently wrong results"
    )
    example = "try: log = load_trace_log(p)\nexcept Exception: log = None"

    _BROAD = frozenset({"Exception", "BaseException"})

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if any(isinstance(n, ast.Raise) for body in node.body for n in ast.walk(body)):
                continue  # handler re-raises (possibly wrapped): not a swallow
            yield self.finding(
                module,
                node,
                f"{broad} handler without a re-raise can swallow "
                "TraceFormatError; catch the specific exceptions or "
                "re-raise",
            )

    def _broad_name(self, type_node: Optional[ast.AST]) -> Optional[str]:
        if type_node is None:
            return "bare except:"
        names = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for name_node in names:
            dotted = _dotted(name_node) or ""
            tail = dotted.split(".")[-1]
            if tail in self._BROAD:
                return f"except {tail}"
        return None


# ----------------------------------------------------------------------
# RL008 — registry completeness (project rule)


@register
class RegistryCompleteness(Rule):
    id = "RL008"
    name = "registry-complete"
    rationale = (
        "the experiment API validates method strings against the "
        "registry; a PartitionMethod subclass that is not registered "
        "(or whose factory hides parameters behind *args/**kwargs) is "
        "unreachable from specs and silently skips parameter validation"
    )
    example = "class NewPartitioner(PartitionMethod): ...  # never registered"

    project_rule = True

    _BASE = "PartitionMethod"
    _FACTORIES_NAME = "_FACTORIES"
    _REGISTER_FUNC = "register_method"

    def run(self, project: Project) -> Iterator[Finding]:
        # top-level class definitions, in file order (duplicated names
        # across files are each checked); classes defined inside
        # functions are scoped helpers that *cannot* be meaningfully
        # registered, so they are exempt by construction
        top_level: List[Tuple[str, str, int, int]] = []
        classes: Dict[str, Tuple[str, object]] = {}  # first occurrence wins
        bases: Dict[str, Set[str]] = {}
        factory_classes: Set[str] = set()
        runtime_registered: Set[str] = set()
        registry_present = False

        for summary in project.summaries:
            for name, line, col in summary.top_level_classes:
                top_level.append((summary.relpath, name, line, col))
            for name, info in summary.classes.items():
                classes.setdefault(name, (summary.relpath, info))
                bases.setdefault(name, set()).update(info.base_tails)
            factory_classes.update(summary.factories)
            runtime_registered.update(summary.register_calls)
            registry_present = registry_present or summary.registry_present

        if not registry_present:
            return  # no registry in this lint set: nothing to join against

        subclasses = self._transitive_subclasses(bases)
        registered = factory_classes | runtime_registered
        for relpath, name, line, col in top_level:
            if name not in subclasses:
                continue
            known = classes.get(name)
            if known is not None and known[1].is_abstract:
                continue
            if name not in registered:
                yield self.finding_at(
                    relpath,
                    line,
                    col,
                    f"{name} subclasses {self._BASE} but is neither in "
                    f"{self._FACTORIES_NAME} nor registered via "
                    f"{self._REGISTER_FUNC}(); it is unreachable from "
                    "method specs",
                )
        for name in sorted(factory_classes & set(classes)):
            relpath, info = classes[name]
            sig = self._find_init_sig(name, classes, bases)
            if sig is None:
                continue
            yield from self._check_init(relpath, info, name, sig)

    def _transitive_subclasses(self, bases: Dict[str, Set[str]]) -> Set[str]:
        known = {self._BASE}
        changed = True
        while changed:
            changed = False
            for name, base_names in bases.items():
                if name not in known and base_names & known:
                    known.add(name)
                    changed = True
        known.discard(self._BASE)
        return known

    def _find_init_sig(
        self,
        name: str,
        classes: Dict[str, Tuple[str, object]],
        bases: Dict[str, Set[str]],
    ) -> Optional[Dict[str, object]]:
        """The ``__init__`` signature summary along the local MRO."""
        seen: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in classes:
                continue
            seen.add(current)
            info = classes[current][1]
            if info.init_sig is not None:
                return info.init_sig
            queue.extend(sorted(bases.get(current, ())))
        return None

    def _check_init(
        self, relpath: str, info, name: str, sig: Dict[str, object]
    ) -> Iterator[Finding]:
        if sig.get("varargs"):
            yield self.finding_at(
                relpath,
                info.line,
                info.col,
                f"registered method {name}'s __init__ takes "
                "*args/**kwargs; method_params() cannot introspect its "
                "parameters, so specs lose up-front validation",
            )
            return
        params = list(sig.get("params", ()))
        for required in ("k", "seed"):
            if required not in params:
                yield self.finding_at(
                    relpath,
                    info.line,
                    info.col,
                    f"registered method {name}'s __init__ does not accept "
                    f"{required!r}; the registry instantiates factories "
                    "as factory(k, seed=..., **params)",
                )


# ----------------------------------------------------------------------
# RL009 — mutation of frozen spec objects


@register
class FrozenSpecMutation(Rule):
    id = "RL009"
    name = "frozen-spec-mutation"
    rationale = (
        "MethodSpec/ExperimentSpec/ExecutionSpec/CellKey are frozen "
        "values used as cache and store keys; mutating one "
        "(object.__setattr__ outside the constructor) silently corrupts "
        "store identity"
    )
    example = "object.__setattr__(spec, 'scale', 'large')"

    _FROZEN_CLASSES = frozenset(
        {"MethodSpec", "ExperimentSpec", "ExecutionSpec", "CellKey"}
    )
    _FROZEN_FACTORIES = frozenset({"parse", "of", "from_dict", "replace"})
    _ALLOWED_FUNCS = frozenset(
        {"__init__", "__post_init__", "__new__", "__setstate__", "replace", "_replace"}
    )

    def check_module(self, module: Module) -> Iterator[Finding]:
        for scope, body in _func_scopes(module.tree):
            scope_name = getattr(scope, "name", "<module>")
            frozen_names = self._frozen_names(scope, body)
            for node in _walk_shallow(body):
                if isinstance(node, ast.Call):
                    if (
                        _dotted(node.func) == "object.__setattr__"
                        and scope_name not in self._ALLOWED_FUNCS
                    ):
                        yield self.finding(
                            module,
                            node,
                            "object.__setattr__ outside __init__/"
                            "__post_init__/replace mutates a frozen "
                            "object; build a new spec instead "
                            "(dataclasses.replace)",
                        )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in frozen_names
                        ):
                            yield self.finding(
                                module,
                                target,
                                f"attribute assignment on frozen spec "
                                f"{target.value.id!r}; frozen dataclasses "
                                "reject this at runtime — build a new "
                                "spec (dataclasses.replace)",
                            )

    def _frozen_names(
        self, scope: Optional[ast.AST], body: Sequence[ast.stmt]
    ) -> Set[str]:
        names: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                if arg.annotation is not None and self._spec_annotation(arg.annotation):
                    names.add(arg.arg)
        for node in _walk_shallow(body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self._is_spec_expr(node.value):
                    names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if self._spec_annotation(node.annotation):
                    names.add(node.target.id)
        return names

    def _is_spec_expr(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = _dotted(node.func) or ""
        parts = dotted.split(".")
        if parts[-1] in self._FROZEN_CLASSES:
            return True
        return (
            len(parts) >= 2
            and parts[-2] in self._FROZEN_CLASSES
            and parts[-1] in self._FROZEN_FACTORIES
        )

    def _spec_annotation(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.split(".")[-1].strip("'\"") in self._FROZEN_CLASSES
        return (_dotted(node) or "").split(".")[-1] in self._FROZEN_CLASSES


# ----------------------------------------------------------------------
# RL010 — per-row Interaction access in batch-kernel target modules


@register
class RowwiseInteraction(Rule):
    id = "RL010"
    name = "rowwise-interaction"
    severity = SEVERITY_ADVICE
    rationale = (
        "the replay/partitioning hot path runs on batch kernels over "
        "dense ColumnarLog columns (repro.kernels): a per-row "
        "Interaction attribute loop in a kernel-dispatching module or a "
        "ROADMAP batch-kernel target reintroduces the Ethereum-scale "
        "bottleneck those kernels removed"
    )
    example = "for it in window: graph.add_edge(it.src, it.dst, 1)"

    #: (directory segment, module basename) pairs the ROADMAP names —
    #: flagged even before they dispatch to kernels
    _TARGETS = (
        ("core", "multireplay.py"),
        ("core", "fennel.py"),
        ("metis", "graph.py"),
        ("metis", "matching.py"),
        ("metis", "refine.py"),
        # the boxed replay path; replay_columnar is the batch rewrite
        ("sharding", "coordinator.py"),
    )
    _ROW_ATTRS = frozenset(
        {"src", "dst", "timestamp", "tx_id", "src_kind", "dst_kind"}
    )

    def applies(self, module: Module) -> bool:
        # a module becomes a target either by being named in the ROADMAP
        # list or by already dispatching to the kernel layer — converted
        # modules stay in scope so a *new* per-row loop is still flagged
        return any(
            module.basename == basename and module.in_dirs(segment)
            for segment, basename in self._TARGETS
        ) or self._dispatches_to_kernels(module)

    def _dispatches_to_kernels(self, module: Module) -> bool:
        """True if the module contains a kernel-dispatch call site.

        Recognised forms: ``kernels.active()`` (any import spelling of
        the ``repro.kernels`` package) and a bare ``active()`` when the
        name was imported from the kernels package.
        """
        bare_active = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[-1] == "kernels":
                    bare_active |= any(
                        (alias.asname or alias.name) == "active"
                        for alias in node.names
                    )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func) or ""
            if dotted == "kernels.active" or dotted.endswith(".kernels.active"):
                return True
            if bare_active and dotted == "active":
                return True
        return False

    def check_module(self, module: Module) -> Iterator[Finding]:
        dispatches = self._dispatches_to_kernels(module)
        hint = (
            "this module already dispatches to repro.kernels — route "
            "the loop through a batch kernel"
            if dispatches
            else "this module is a ROADMAP batch-kernel target — "
            "consider bulk kernels over ColumnarLog columns"
        )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                loop_vars = self._target_names(node.target)
                search: List[ast.AST] = list(node.body)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                loop_vars = set()
                for gen in node.generators:
                    loop_vars |= self._target_names(gen.target)
                search = (
                    [node.key, node.value]
                    if isinstance(node, ast.DictComp)
                    else [node.elt]
                )
                # nested generators iterate row attributes too:
                # (e for it in rows for e in (it.src, it.dst))
                for gen in node.generators:
                    search.append(gen.iter)
                    search.extend(gen.ifs)
            else:
                continue
            attrs = self._row_attrs(search, loop_vars)
            if attrs:
                yield self.finding(
                    module,
                    node,
                    "loop reads Interaction attributes "
                    f"({', '.join(sorted(attrs))}) per row; {hint}",
                )

    def _target_names(self, target: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
        return names

    def _row_attrs(self, search: Sequence[ast.AST], loop_vars: Set[str]) -> Set[str]:
        attrs: Set[str] = set()
        for root in search:
            for node in ast.walk(root):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in loop_vars
                    and node.attr in self._ROW_ATTRS
                ):
                    attrs.add(node.attr)
        return attrs


# ----------------------------------------------------------------------
# interprocedural rules (RL011–RL013) live in flowrules.py; importing
# the module registers them.  The import sits at the bottom so
# flowrules can import Rule/register from this (partially initialised)
# module without a cycle.

from repro.lint import flowrules as _flowrules  # noqa: E402,F401
