"""Interprocedural rules RL011–RL013 (call-graph + dataflow powered).

These are the rules PR 6's intraprocedural pass could not express:

* **RL011** — a wall-clock read or unseeded-randomness source
  *transitively reachable* from the replay/partitioning entry points
  taints every replay result; the finding carries the full call chain
  from the entry point as evidence (``Finding.chain``, rendered in the
  message and serialized in the ``reprolint/2`` JSON).
* **RL012** — values submitted to a ``ProcessPoolExecutor`` must be
  picklable *by construction*: no lambdas, no functions defined inside
  other functions, no open file handles, no buffer-backed
  :class:`~repro.graph.columnar.ColumnarLog`.  The ``_FORK_SHARED``
  copy-on-write escape hatch is sanctioned, but any submitted function
  that transitively reads it must sit behind a fork-only guard.
* **RL013** — every dataclass field of the spec classes that key the
  result store (``MethodSpec``/``ExperimentSpec``/``ExecutionSpec``
  and ``LogSource`` subclasses) must flow into the identity payload
  (``label()``/``store_id()``/``identity``), or carry a justified
  suppression — statically closing the PR 3 cache-collision class.

All three are project rules working from module summaries, so cached
summaries replay them without re-parsing unchanged files.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import fork_shared_readers, reachable_taints
from repro.lint.engine import Finding, Project
from repro.lint.rules import Rule, register


def _graph_for(project: Project) -> CallGraph:
    """One shared CallGraph per lint run (edges resolve lazily)."""
    graph = getattr(project, "_callgraph", None)
    if graph is None:
        graph = CallGraph(project.summaries)
        project._callgraph = graph
    return graph


# ----------------------------------------------------------------------
# RL011 — transitive determinism taint


@register
class TransitiveDeterminismTaint(Rule):
    id = "RL011"
    name = "transitive-taint"
    project_rule = True
    rationale = (
        "a helper that reads the wall clock or unseeded randomness "
        "three frames below a replay entry point corrupts results just "
        "as surely as a direct call; the call graph propagates the "
        "taint from MultiReplayEngine.run / part_graph / "
        "ShardedExecution.replay* to every reachable function"
    )
    example = "def _helper(): return time.time()  # called from run()"

    #: dotted-suffix patterns of the replay/partitioning entry points
    _ENTRY_PATTERNS = (
        "core.multireplay.MultiReplayEngine.run",
        "metis.api.part_graph",
        "sharding.coordinator.ShardedExecution.replay",
        "sharding.coordinator.ShardedExecution.replay_columnar",
    )

    _KIND_TEXT = {
        "wall-clock": "reads the wall clock",
        "unseeded-random": "draws unseeded randomness",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        graph = _graph_for(project)
        for taint in reachable_taints(graph, self._ENTRY_PATTERNS):
            chain = tuple(taint["chain"])
            what = self._KIND_TEXT.get(str(taint["kind"]), "is nondeterministic")
            yield self.finding_at(
                str(taint["relpath"]),
                int(taint["line"]),
                int(taint["col"]),
                f"{taint['label']} {what} and is reachable from replay "
                f"entry point {chain[0]} (call chain: "
                f"{' -> '.join(chain)}); replay must be a pure function "
                "of the trace and injected seeds",
                chain=chain,
            )


# ----------------------------------------------------------------------
# RL012 — process-pool boundary safety


@register
class ProcessPoolBoundary(Rule):
    id = "RL012"
    name = "pool-boundary"
    project_rule = True
    rationale = (
        "arguments to ProcessPoolExecutor.submit are pickled through "
        "the call pipe; lambdas, nested functions, open handles and "
        "buffer-backed ColumnarLogs fail (or silently copy) at the "
        "worker boundary — and the _FORK_SHARED copy-on-write escape "
        "hatch is only sound under the fork start method"
    )
    example = "ex.submit(lambda: replay_chunk(log, w, c))"

    _UNPICKLABLE = {
        "lambda": "a lambda cannot be pickled to a worker process; "
        "submit a module-level function",
        "nested_func": "{name}() is defined inside a function and "
        "cannot be pickled to a worker process; move it to module "
        "level",
        "open_handle": "{name} is an open file handle; handles cannot "
        "cross the process boundary — pass the path and open in the "
        "worker",
        "buffer_log": "{name} is a buffer-backed ColumnarLog "
        "(mmap/memoryview); pass a LogSource and let each worker open "
        "its own mapping",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        graph = _graph_for(project)
        readers: Optional[Set[str]] = None  # computed on first use
        for summary in project.summaries:
            for submit in summary.submits:
                items = [submit["func"]] + list(submit["args"])
                for item in items:
                    kind = str(item["kind"])
                    if kind in self._UNPICKLABLE:
                        yield self.finding_at(
                            summary.relpath,
                            int(item["line"]),
                            int(item["col"]),
                            "ProcessPoolExecutor.submit argument: "
                            + self._UNPICKLABLE[kind].format(name=item["name"]),
                        )
                        continue
                    if kind != "module_func" or not item.get("target"):
                        continue
                    if readers is None:
                        readers = fork_shared_readers(graph)
                    for symbol in graph.resolve_name(str(item["target"])):
                        if symbol in readers and not submit["guarded"]:
                            yield self.finding_at(
                                summary.relpath,
                                int(item["line"]),
                                int(item["col"]),
                                f"{item['name']}() reaches the "
                                "_FORK_SHARED copy-on-write state (via "
                                f"{symbol}) but this submit is not "
                                "fork-guarded; _FORK_SHARED is only "
                                "inherited under the 'fork' start "
                                "method — guard the submit with a "
                                "start-method check",
                            )
                            break


# ----------------------------------------------------------------------
# RL013 — store-identity completeness


@register
class StoreIdentityCompleteness(Rule):
    id = "RL013"
    name = "store-identity"
    project_rule = True
    rationale = (
        "the result store is keyed by spec identity payloads; a spec "
        "field that does not flow into label()/store_id()/identity "
        "makes two different experiments collide in the store and "
        "silently serve each other's cached results (the PR 3 bug "
        "class)"
    )
    example = "@dataclass(frozen=True)\nclass ExperimentSpec:\n    window_hours: float  # missing from store_id()"

    #: spec class -> its identity method/property
    _IDENTITY_METHODS = {
        "MethodSpec": "label",
        "ExperimentSpec": "store_id",
        "ExecutionSpec": "identity",
    }
    _BASE = "LogSource"

    def run(self, project: Project) -> Iterator[Finding]:
        graph = _graph_for(project)
        for summary in project.summaries:
            for name, info in summary.classes.items():
                if not info.is_dataclass:
                    continue
                method = self._IDENTITY_METHODS.get(name)
                if method is None and self._reaches_base(
                    graph, summary.modname, name, set()
                ):
                    method = "identity"
                if method is None:
                    continue
                yield from self._check_class(graph, summary, name, info, method)

    def _reaches_base(
        self,
        graph: CallGraph,
        modname: str,
        clsname: str,
        seen: Set[Tuple[str, str]],
    ) -> bool:
        """Whether the class's base chain reaches ``LogSource``."""
        key = (modname, clsname)
        if key in seen:
            return False
        seen.add(key)
        summary = graph.by_modname.get(modname)
        info = summary.classes.get(clsname) if summary else None
        if info is None:
            return False
        if self._BASE in info.base_tails:
            return True
        for base in info.bases:
            resolved = graph.resolve_class(base)
            if resolved and self._reaches_base(graph, resolved[0], resolved[1], seen):
                return True
        return False

    def _check_class(
        self, graph: CallGraph, summary, clsname: str, info, method_name: str
    ) -> Iterator[Finding]:
        if not info.fields:
            return
        entry = graph.mro_method(summary.modname, clsname, method_name)
        if entry is None:
            yield self.finding_at(
                summary.relpath,
                info.line,
                info.col,
                f"{clsname} keys the result store but defines no "
                f"{method_name}() identity; every field must flow into "
                "a stable identity payload",
            )
            return
        covered, introspects = self._coverage(graph, summary.modname, clsname, entry)
        if introspects:
            return  # dataclasses.fields(self) covers every field
        for field in info.fields:
            if field["name"] not in covered:
                yield self.finding_at(
                    summary.relpath,
                    int(field["line"]),
                    int(field["col"]),
                    f"field {field['name']!r} of {clsname} does not "
                    f"flow into {method_name}(); two specs differing "
                    f"only in {field['name']} would collide in the "
                    "result store — include it in the identity payload "
                    "(or suppress with a written justification)",
                )

    def _coverage(
        self, graph: CallGraph, modname: str, clsname: str, entry: str
    ) -> Tuple[Set[str], bool]:
        """(self attributes read, uses dataclasses.fields) reachable
        from the identity method through ``self.``-dispatched calls."""
        covered: Set[str] = set()
        introspects = False
        seen = {entry}
        queue = deque([entry])
        while queue:
            symbol = queue.popleft()
            record = graph.functions.get(symbol)
            if record is None:
                continue
            _summary, fn = record
            if fn.fields_introspection:
                introspects = True
            for read in fn.self_reads:
                covered.add(read)
                target = graph.mro_method(modname, clsname, read)
                if target is not None and target not in seen:
                    seen.add(target)
                    queue.append(target)
        return covered, introspects
