"""``python -m repro.lint`` — command line front end.

Exit status: 0 when no error-severity findings survive suppression
(advice never fails a run), 1 when violations remain, 2 on usage
errors, 3 on an internal linter crash (so CI can distinguish "lint
found problems" from "lint itself broke").  ``--format json`` emits
the stable ``reprolint/2`` schema::

    {
      "schema": "reprolint/2",
      "files": 123,
      "findings": [
        {"file": "src/x.py", "line": 10, "col": 5,
         "rule": "RL002", "severity": "error", "message": "...",
         "chain": ["repro.core.multireplay.MultiReplayEngine.run",
                   "repro.core.helpers._jitter"]}
      ],
      "counts": {"error": 1, "advice": 0, "suppressed": 2},
      "cache": {"hit": 120, "parsed": 3, "impacted": 5},
      "exit": 1
    }

``chain`` appears only on interprocedural findings (RL011) and lists
the call path from the replay entry point to the tainted function;
``cache`` appears only on cache-enabled runs (the default — see
``--no-cache`` / ``--cache-path`` / ``--changed-only``).  Findings are
sorted by (file, line, col, rule) so reports diff cleanly across runs;
``file`` is relative to the common ancestor of the path arguments,
with ``/`` separators on every platform.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, List, Optional, Sequence

from repro.lint.engine import SEVERITY_ADVICE, LintReport, lint_paths
from repro.lint.rules import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: AST-based determinism & trace-safety linter "
            "for this repository"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests benchmarks examples)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--no-advice",
        action="store_true",
        help="omit advice-level findings from the report",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental lint cache (always analyze cold)",
    )
    parser.add_argument(
        "--cache-path",
        metavar="FILE",
        help=(
            "cache file location (default: .reprolint_cache.json in "
            "the lint root)"
        ),
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report only findings in files re-analyzed this run "
            "(changed files plus their call-graph dependents); exit "
            "status still reflects the reported findings only"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule reference table and exit",
    )
    return parser


def _list_rules(out: IO[str]) -> None:
    out.write("reprolint rules (see docs/lint_rules.md for examples):\n\n")
    for rule in all_rules():
        out.write(f"{rule.id}  {rule.name}  [{rule.severity}]\n")
        out.write(f"    {rule.rationale}\n")


def _render_text(report: LintReport, out: IO[str], show_advice: bool) -> None:
    for finding in report.findings:
        if finding.severity == SEVERITY_ADVICE and not show_advice:
            continue
        out.write(
            f"{finding.location()}: {finding.rule} "
            f"[{finding.severity}] {finding.message}\n"
        )
    advice = 0 if not show_advice else len(report.advice)
    out.write(
        f"reprolint: {report.files} file(s), {len(report.errors)} error(s), "
        f"{advice} advice, {report.suppressed} suppressed\n"
    )


def _render_json(report: LintReport, out: IO[str], show_advice: bool) -> None:
    data = report.to_dict()
    if not show_advice:
        data["findings"] = [
            f for f in data["findings"] if f["severity"] != SEVERITY_ADVICE
        ]
        data["counts"]["advice"] = 0
    json.dump(data, out, indent=2, sort_keys=True)
    out.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(sys.stdout)
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src tests)")

    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        report = lint_paths(
            args.paths,
            select=select,
            use_cache=not args.no_cache,
            cache_path=args.cache_path,
            changed_only=args.changed_only,
        )
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # reprolint: disable=RL007 -- deliberate last-resort handler: an internal linter crash must exit 3 (distinct from findings=1 and usage=2) so CI can tell "lint failed" from "lint found problems"
        print(
            f"reprolint: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 3

    if args.output:
        with open(args.output, "w", encoding="utf-8") as out:
            _render(report, out, args)
    else:
        _render(report, sys.stdout, args)
    return report.exit_code


def _render(report: LintReport, out: IO[str], args: argparse.Namespace) -> None:
    if args.format == "json":
        _render_json(report, out, show_advice=not args.no_advice)
    else:
        _render_text(report, out, show_advice=not args.no_advice)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
