"""Incremental lint cache: content-hashed per-file findings + summaries.

Whole-project analysis (RL005/RL008/RL011–RL013) is strictly more work
per run than the per-file rules, so warm runs must not pay for it from
scratch.  The cache stores, per file, keyed by the sha256 of its bytes:

* the per-module findings (module rules + RL000 parse errors),
  **pre-suppression**, plus the file's suppression table — so a warm
  run reproduces the exact kept/suppressed split without re-tokenizing;
* the project-rule findings anchored in the file (reused only when the
  *entire* tree is unchanged — a project finding depends on every
  summary, not just its anchor file);
* the file's :class:`~repro.lint.callgraph.ModuleSummary`, the
  serializable IR the project rules work from — so when *some* files
  change, the project rules rerun over summaries without re-parsing
  the unchanged files.

Invalidation:

* a changed file re-runs its own module rules (content hash mismatch);
* project rules rerun whenever any file changed, over cached+fresh
  summaries — which transitively accounts for call-graph effects (a
  leaf edit can change a taint chain anchored two files away);
* the ``impacted`` statistic (and ``--changed-only`` reporting) is the
  changed set plus its reverse call-graph closure — the files whose
  interprocedural findings could have shifted;
* the whole cache is invalidated by a linter-code change (the rules
  signature hashes every ``src/repro/lint/*.py``), by a different lint
  root, or by a schema bump.

File format (``.reprolint_cache.json``, see docs/lint_internals.md)::

    {"schema": "reprolint-cache/1", "rules": "<sha256>",
     "root": "/abs/lint/root",
     "files": {"src/repro/x.py": {"hash": "...", "summary": {...},
               "local": [...], "project": [...], "disables": {...}}}}

Writes are atomic (tmp file + rename) so an interrupted run never
leaves a torn cache; any unreadable/stale cache degrades to a cold
run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    Finding,
    LintReport,
    Module,
    Project,
    _lint_root,
    apply_suppressions,
    collect_files,
)

CACHE_SCHEMA = "reprolint-cache/1"
CACHE_BASENAME = ".reprolint_cache.json"


def default_cache_path(root: str) -> str:
    return os.path.join(root, CACHE_BASENAME)


def rules_signature() -> str:
    """sha256 over the linter's own sources: editing any rule, the
    engine, or this module invalidates every cached finding."""
    lint_dir = os.path.dirname(os.path.abspath(__file__))
    digest = hashlib.sha256()
    for name in sorted(os.listdir(lint_dir)):
        if not name.endswith(".py"):
            continue
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        with open(os.path.join(lint_dir, name), "rb") as f:
            digest.update(f.read())
        digest.update(b"\0")
    return digest.hexdigest()


def _encode_finding(finding: Finding) -> Dict[str, object]:
    return {
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "severity": finding.severity,
        "message": finding.message,
        "chain": list(finding.chain),
    }


def _decode_finding(relpath: str, data: Dict[str, object]) -> Finding:
    return Finding(
        path=relpath,
        line=int(data["line"]),
        col=int(data["col"]),
        rule=str(data["rule"]),
        severity=str(data["severity"]),
        message=str(data["message"]),
        chain=tuple(data.get("chain", ())),
    )


def _encode_disables(disables: Dict[int, FrozenSet[str]]) -> Dict[str, List[str]]:
    return {str(line): sorted(ids) for line, ids in disables.items()}


def _decode_disables(data: Dict[str, object]) -> Dict[int, FrozenSet[str]]:
    return {int(line): frozenset(ids) for line, ids in data.items()}


def _load_cache(path: str, root: str, signature: str) -> Dict[str, Dict]:
    """The cached per-file entries, or {} when absent/stale/corrupt."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
        return {}
    if data.get("rules") != signature or data.get("root") != root:
        return {}
    entries = data.get("files")
    return entries if isinstance(entries, dict) else {}


def _write_cache(
    path: str, root: str, signature: str, entries: Dict[str, Dict]
) -> None:
    data = {
        "schema": CACHE_SCHEMA,
        "rules": signature,
        "root": root,
        "files": entries,
    }
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(data, f, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        # a read-only checkout still lints; the next run is just cold
        try:
            os.unlink(tmp)
        except OSError:
            pass


def lint_paths_cached(
    paths: Sequence[str],
    cache_path: Optional[str] = None,
    changed_only: bool = False,
) -> LintReport:
    """Lint with the incremental cache (all rules; see lint_paths)."""
    files = collect_files(paths)
    root = _lint_root(files, paths)
    cache_file = cache_path or default_cache_path(root)
    signature = rules_signature()
    cached = _load_cache(cache_file, root, signature)

    located: List[Tuple[str, str]] = []  # (abspath, relpath)
    hashes: Dict[str, str] = {}
    texts: Dict[str, bytes] = {}
    for abspath in files:
        relpath = os.path.relpath(abspath, root).replace(os.sep, "/")
        with open(abspath, "rb") as f:
            blob = f.read()
        located.append((abspath, relpath))
        hashes[relpath] = hashlib.sha256(blob).hexdigest()
        texts[relpath] = blob
    current: Set[str] = {rel for _, rel in located}

    clean: Set[str] = {
        rel
        for rel in current
        if rel in cached and cached[rel].get("hash") == hashes[rel]
    }
    dirty: Set[str] = current - clean

    if not dirty and set(cached) == current:
        return _full_hit_report(located, cached, changed_only)
    return _partial_report(
        located,
        cached,
        clean,
        dirty,
        hashes,
        texts,
        changed_only,
        cache_file,
        root,
        signature,
    )


def _full_hit_report(
    located: Sequence[Tuple[str, str]],
    cached: Dict[str, Dict],
    changed_only: bool,
) -> LintReport:
    """Every file unchanged: replay findings, parse nothing."""
    findings: List[Finding] = []
    by_relpath: Dict[str, Module] = {}
    for abspath, relpath in located:
        entry = cached[relpath]
        by_relpath[relpath] = Module.from_cache(
            abspath, relpath, None, _decode_disables(entry.get("disables", {}))
        )
        for item in entry.get("local", []) + entry.get("project", []):
            findings.append(_decode_finding(relpath, item))
    kept, suppressed = apply_suppressions(findings, by_relpath)
    if changed_only:
        kept, suppressed = [], 0
    return LintReport(
        findings=tuple(sorted(kept)),
        suppressed=suppressed,
        files=len(located),
        cache_stats={
            "hit": len(located),
            "parsed": 0,
            "impacted": 0,
            "parsed_files": [],
            "impacted_files": [],
        },
    )


def _partial_report(
    located: Sequence[Tuple[str, str]],
    cached: Dict[str, Dict],
    clean: Set[str],
    dirty: Set[str],
    hashes: Dict[str, str],
    texts: Dict[str, bytes],
    changed_only: bool,
    cache_file: str,
    root: str,
    signature: str,
) -> LintReport:
    """Some files changed: parse those, restore the rest, rerun the
    project rules over the combined summaries, refresh the cache."""
    from repro.lint.callgraph import ModuleSummary
    from repro.lint.dataflow import file_dependencies, reverse_file_closure
    from repro.lint.engine import SEVERITY_ERROR
    from repro.lint.flowrules import _graph_for
    from repro.lint.rules import active_rules

    modules: List[Module] = []
    for abspath, relpath in located:
        if relpath in clean:
            entry = cached[relpath]
            summary_data = entry.get("summary")
            summary = (
                ModuleSummary.from_dict(summary_data) if summary_data else None
            )
            modules.append(
                Module.from_cache(
                    abspath,
                    relpath,
                    summary,
                    _decode_disables(entry.get("disables", {})),
                )
            )
        else:
            text = texts[relpath].decode("utf-8")
            modules.append(Module(abspath, relpath, text))
    project = Project(modules)

    local_by_rel: Dict[str, List[Finding]] = {rel: [] for _, rel in located}
    for relpath in clean:
        for item in cached[relpath].get("local", []):
            local_by_rel[relpath].append(_decode_finding(relpath, item))
    for module in project.modules:
        if module.parse_error is not None:
            line, col, msg = module.parse_error
            local_by_rel[module.relpath].append(
                Finding(
                    path=module.relpath,
                    line=line,
                    col=col,
                    rule="RL000",
                    severity=SEVERITY_ERROR,
                    message=f"file does not parse: {msg}",
                )
            )

    rules = active_rules(None)
    for rule in rules:
        if rule.project_rule:
            continue
        # cached modules hold no AST, so rule.run only revisits the
        # re-parsed (dirty) files
        for finding in rule.run(project):
            local_by_rel[finding.path].append(finding)

    project_by_rel: Dict[str, List[Finding]] = {rel: [] for _, rel in located}
    for rule in rules:
        if not rule.project_rule:
            continue
        for finding in rule.run(project):
            project_by_rel.setdefault(finding.path, []).append(finding)

    graph = _graph_for(project)
    impacted = reverse_file_closure(file_dependencies(graph), dirty) & (
        set(local_by_rel)
    )
    impacted |= dirty

    findings: List[Finding] = []
    for bucket in (local_by_rel, project_by_rel):
        for items in bucket.values():
            findings.extend(items)
    kept, suppressed = apply_suppressions(findings, project.by_relpath)
    if changed_only:
        kept = [f for f in kept if f.path in impacted]

    entries: Dict[str, Dict] = {}
    for module in project.modules:
        relpath = module.relpath
        summary = module.summary
        entries[relpath] = {
            "hash": hashes[relpath],
            "summary": summary.to_dict() if summary is not None else None,
            "local": [_encode_finding(f) for f in local_by_rel[relpath]],
            "project": [
                _encode_finding(f) for f in project_by_rel.get(relpath, [])
            ],
            "disables": _encode_disables(module.disables),
        }
    _write_cache(cache_file, root, signature, entries)

    return LintReport(
        findings=tuple(sorted(kept)),
        suppressed=suppressed,
        files=len(project.modules),
        cache_stats={
            "hit": len(clean),
            "parsed": len(dirty),
            "impacted": len(impacted),
            "parsed_files": sorted(dirty),
            "impacted_files": sorted(impacted),
        },
    )
