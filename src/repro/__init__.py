"""repro — reproduction of "Challenges and Pitfalls of Partitioning
Blockchains" (Fynn & Pedone, DSN 2018).

The library models a blockchain as a weighted directed graph, generates
a calibrated synthetic Ethereum-like history on a real executable
substrate (EVM-lite + chain), partitions it with the paper's five
methods, and reproduces every figure of the paper's evaluation.

Quickstart::

    from repro import WorkloadConfig, generate_history, make_method, replay_method

    history = generate_history(WorkloadConfig.small())
    method = make_method("metis", k=2, seed=1)
    result = replay_method(history.builder.log, method)
    print(result.series.points[-1], result.total_moves)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.graph` — blockchain-graph substrate;
* :mod:`repro.ethereum` — accounts, EVM-lite, chain, synthetic workload;
* :mod:`repro.metis` — from-scratch multilevel partitioner;
* :mod:`repro.core` — the five partitioning methods + replay engine;
* :mod:`repro.metrics` — edge-cut / balance / moves (Eqs. 1-2);
* :mod:`repro.sharding` — sharded-execution discrete-event simulator;
* :mod:`repro.experiments` — declarative specs, parallel sweeps,
  serializable result sets;
* :mod:`repro.analysis` — figure regeneration.

Declarative sweeps::

    from repro import ExperimentSpec, run_experiment

    rs = run_experiment(ExperimentSpec(
        scale="small", methods=("hash", "metis"), ks=(2, 4, 8)), jobs=4)
    print(rs.get("metis", k=8).mean("dynamic_edge_cut"))
"""

from repro.core.multireplay import MultiReplayEngine, replay_methods
from repro.core.registry import available_methods, make_method, register_method
from repro.core.replay import ReplayEngine, ReplayResult, replay_method
from repro.ethereum.workload import WorkloadConfig, WorkloadResult, generate_history
from repro.experiments import (
    ExecutionSpec,
    ExperimentSpec,
    LogSource,
    MethodSpec,
    ResultSet,
    ResultStore,
    SyntheticSource,
    TraceSource,
    run_experiment,
)
from repro.graph.builder import GraphBuilder, Interaction
from repro.graph.columnar import ColumnarLog
from repro.graph.io import load_columnar, load_trace_log, write_columnar
from repro.graph.digraph import VertexKind, WeightedDiGraph
from repro.metis import part_graph

__version__ = "1.2.0"

__all__ = [
    "WorkloadConfig",
    "WorkloadResult",
    "generate_history",
    "make_method",
    "available_methods",
    "register_method",
    "ExecutionSpec",
    "ExperimentSpec",
    "MethodSpec",
    "ResultSet",
    "ResultStore",
    "LogSource",
    "SyntheticSource",
    "TraceSource",
    "run_experiment",
    "load_columnar",
    "load_trace_log",
    "write_columnar",
    "ReplayEngine",
    "ReplayResult",
    "replay_method",
    "MultiReplayEngine",
    "replay_methods",
    "GraphBuilder",
    "Interaction",
    "ColumnarLog",
    "WeightedDiGraph",
    "VertexKind",
    "part_graph",
    "__version__",
]
