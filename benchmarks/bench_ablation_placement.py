"""ABL-PLACE — does the paper's new-vertex placement rule matter?

The paper places vertices appearing between repartitionings by
inspecting the transaction's other accounts and minimising edge-cut
(tie-break: balance).  This ablation replays R-METIS with three
placement rules — the paper's min-cut rule, hashing, and uniform
random — and compares the dynamic edge-cut each produces.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.core.placement import place_by_hash, place_randomly
from repro.core.replay import ReplayEngine
from repro.core.rmetis import RMetisPartitioner
from repro.graph.snapshot import HOUR

K = 4


class HashPlacedRMetis(RMetisPartitioner):  # reprolint: disable=RL008 -- ablation-only variant, constructed directly by the benchmark
    name = "r-metis+hash-place"

    def place_vertex(self, vertex, tx_endpoints, assignment):
        return place_by_hash(vertex, self.k)


class RandomPlacedRMetis(RMetisPartitioner):  # reprolint: disable=RL008 -- ablation-only variant, constructed directly by the benchmark
    name = "r-metis+random-place"

    def place_vertex(self, vertex, tx_endpoints, assignment):
        return place_randomly(self.k, self.rng)


@pytest.mark.benchmark(group="ablation-placement")
def test_placement_rule_ablation(benchmark, runner, out_dir):
    log = runner.workload.builder.log

    def run_all():
        results = {}
        for cls in (RMetisPartitioner, HashPlacedRMetis, RandomPlacedRMetis):
            method = cls(K, seed=1)
            results[method.name] = ReplayEngine(
                log, method, metric_window=24 * HOUR
            ).run()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def mean_cut(res):
        pts = [p for p in res.series.points if p.interactions > 0]
        return sum(p.dynamic_edge_cut for p in pts) / len(pts)

    rows = [
        (name, f"{mean_cut(res):.3f}", res.total_moves)
        for name, res in results.items()
    ]
    write_artifact(
        out_dir, "ablation_placement.txt",
        ascii_table(["placement", "dyn edge-cut", "moves"], rows,
                    title=f"ABL-PLACE — R-METIS placement rules, k={K}"),
    )

    min_cut_rule = mean_cut(results["r-metis"])
    assert min_cut_rule < mean_cut(results["r-metis+hash-place"])
    assert min_cut_rule < mean_cut(results["r-metis+random-place"])
