"""EXEC-SWEEP — execution cost of a cut, swept from a v3 trace.

Two measurements in one artifact:

* the *figure*: an execution-enabled sweep (mode × partitioner × k)
  run end to end from an exported rctrace v3 file through
  ``run_experiment`` — committed-transaction throughput next to the
  dynamic edge cut that supposedly predicts it, for 2PC and
  state-migration handling;
* the *engine gate*: the columnar replay path
  (:meth:`~repro.sharding.coordinator.ShardedExecution.replay_columnar`,
  batched off the trace's dense index columns) must beat the boxed
  per-Interaction path by >= 2x on the same rows and assignment while
  producing a bit-identical :class:`ThroughputReport`.

Artifact: ``benchmarks/out/execution_sweep.txt``.
"""

import time

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.execution import (
    compute_execution,
    render_execution,
    render_throughput_vs_k,
)
from repro.analysis.render import ascii_table
from repro.experiments import ExperimentSpec, run_experiment
from repro.graph.columnar import ColumnarLog
from repro.graph.io import write_columnar
from repro.sharding.coordinator import ShardedExecution, ShardedExecutionConfig

SWEEP_METHODS = ("hash", "fennel", "metis")
SWEEP_KS = (2, 4, 8)
MODES = ("2pc", "migrate")


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.benchmark(group="execution-sweep")
def test_execution_sweep_from_trace(runner, out_dir, tmp_path):
    log = ColumnarLog.from_interactions(runner.workload.builder.log)
    trace = tmp_path / "bench.rct"
    write_columnar(log, trace, version=3)

    sections = []
    results = {}
    for mode in MODES:
        spec = ExperimentSpec(
            methods=SWEEP_METHODS, ks=SWEEP_KS, source=str(trace),
            execution=f"mode={mode}",
        )
        t0 = time.perf_counter()
        rs = run_experiment(spec, jobs=2)
        elapsed = time.perf_counter() - t0
        results[mode] = rs
        rows = compute_execution(rs)
        sections.append(render_execution(rows, mode=mode))
        if mode == MODES[-1]:
            sections.append(render_throughput_vs_k(rows))
        sections.append(f"[{mode} sweep: {len(spec.cells())} cells, "
                        f"jobs=2, {elapsed:.1f}s]")

    # -- engine gate: columnar vs boxed replay, same rows/assignment ----
    k = 4
    assignment = dict(results["2pc"].get("metis", k).assignment)
    cfg = ShardedExecutionConfig()
    rate = 0.8 * k / cfg.service_time
    boxed_rows = log.to_interactions()

    def run_boxed():
        ex = ShardedExecution(k, dict(assignment), cfg)
        return ex.replay(boxed_rows, arrival_rate=rate)

    def run_columnar():
        ex = ShardedExecution(k, dict(assignment), cfg)
        return ex.replay_columnar(log, arrival_rate=rate)

    t_boxed, rep_boxed = _best_of(run_boxed)
    t_cols, rep_cols = _best_of(run_columnar)
    assert rep_cols == rep_boxed       # bit-identical reports
    speedup = t_boxed / t_cols
    sections.append(ascii_table(
        ["replay path", "rows", "time", "tx/s simulated"],
        [
            ("boxed (Interaction list)", len(log), f"{t_boxed * 1e3:.1f}ms",
             f"{rep_boxed.throughput:.0f}"),
            ("columnar (dense columns)", len(log), f"{t_cols * 1e3:.1f}ms",
             f"{rep_cols.throughput:.0f}"),
        ],
        title=f"engine: boxed vs columnar replay, k={k} "
              f"(speedup {speedup:.2f}x, reports bit-identical)",
    ))

    write_artifact(out_dir, "execution_sweep.txt", "\n\n".join(sections))

    assert speedup >= 2.0, (
        f"columnar replay only {speedup:.2f}x faster than boxed "
        f"({t_cols * 1e3:.1f}ms vs {t_boxed * 1e3:.1f}ms)"
    )
    # partition quality must show up as execution outcome: the
    # degenerate cut (hash) pays more cross-shard coordination than the
    # informed cuts at every k.  (Raw throughput is NOT monotone in cut
    # quality — hash's perfect balance can outrun a skewed low-cut
    # assignment under saturating arrivals; that tension is the point
    # of the figure, not an assertable ordering.)
    # Under 2PC the assignment is static, so the ordering is direct;
    # under migrate, dynamic co-location can erase a static-cut edge.
    for k in SWEEP_KS:
        worst = results["2pc"].get("hash", k).execution.multi_shard_ratio
        for method in ("fennel", "metis"):
            assert results["2pc"].get(method, k).execution.multi_shard_ratio <= worst
    # migrate mode must actually move state on the trace-backed path,
    # and co-location must shrink the recurring multi-shard population
    for method in SWEEP_METHODS:
        rep_m = results["migrate"].get(method, 4).execution
        assert rep_m.migrations > 0
        assert rep_m.multi_shard < results["2pc"].get(method, 4).execution.multi_shard
