"""ABL-THRESH — TR-METIS trigger thresholds: the moves/quality frontier.

The paper "adjusts thresholds to trigger a repartitioning in such a way
that the performance does not diverge much" from R-METIS.  This
ablation maps that frontier: tighter thresholds repartition more
(more moves, better cut), looser ones barely repartition at all.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.core.replay import ReplayEngine
from repro.core.trmetis import TRMetisPartitioner
from repro.graph.snapshot import HOUR

K = 2


@pytest.mark.benchmark(group="ablation-threshold")
def test_threshold_ablation(benchmark, runner, out_dir):
    log = runner.workload.builder.log
    settings = {
        "tight": dict(cut_threshold=0.25, balance_threshold=0.25),
        "default": dict(),
        "loose": dict(cut_threshold=0.70, balance_threshold=0.80),
    }

    def run_all():
        out = {}
        for name, kwargs in settings.items():
            method = TRMetisPartitioner(K, seed=1, **kwargs)
            out[name] = ReplayEngine(log, method, metric_window=24 * HOUR).run()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def mean_cut(res):
        pts = [p for p in res.series.points if p.interactions > 0]
        return sum(p.dynamic_edge_cut for p in pts) / len(pts)

    rows = [
        (name, f"{mean_cut(res):.3f}", res.total_moves, len(res.events))
        for name, res in results.items()
    ]
    write_artifact(
        out_dir, "ablation_threshold.txt",
        ascii_table(["thresholds", "dyn edge-cut", "moves", "repartitions"],
                    rows, title=f"ABL-THRESH — TR-METIS trigger sweep, k={K}"),
    )

    # the frontier: tighter thresholds -> more repartitions and moves
    assert len(results["tight"].events) > len(results["loose"].events)
    assert results["tight"].total_moves > results["loose"].total_moves
    # measured finding (supports the paper's 'reduce unnecessary
    # repartitioning' motivation): repartitioning *more often* does NOT
    # buy better cut — each extra repartition uses a shorter, less
    # representative window graph, so tight triggers pay ~2-3x the moves
    # for equal-or-worse edge-cut.  All variants must still stay well
    # below the hashing level (~0.5 at k=2).
    assert mean_cut(results["tight"]) >= mean_cut(results["loose"]) - 0.02
    for res in results.values():
        assert mean_cut(res) < 0.40
