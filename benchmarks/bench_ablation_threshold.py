"""ABL-THRESH — TR-METIS trigger thresholds: the moves/quality frontier.

The paper "adjusts thresholds to trigger a repartitioning in such a way
that the performance does not diverge much" from R-METIS.  This
ablation maps that frontier: tighter thresholds repartition more
(more moves, better cut), looser ones barely repartition at all.

The three variants are declarative method specs
(``"tr-metis?cut_threshold=..."``), so they are first-class cells of
one experiment grid: a single shared engine pass, cached/resumable
like the unparameterised methods.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.experiments import ExperimentSpec, run_experiment

K = 2

SETTINGS = {
    "tight": "tr-metis?cut_threshold=0.25&balance_threshold=0.25",
    "default": "tr-metis",
    "loose": "tr-metis?cut_threshold=0.7&balance_threshold=0.8",
}


@pytest.mark.benchmark(group="ablation-threshold")
def test_threshold_ablation(benchmark, runner, bench_scale, out_dir):
    spec = ExperimentSpec(
        scale=bench_scale,
        workload_seed=runner.seed,
        methods=tuple(SETTINGS.values()),
        ks=(K,),
        window_hours=runner.window_hours,
    )

    def run_all():
        rs = run_experiment(spec, workload=runner.workload)
        return {name: rs.get(m, K) for name, m in SETTINGS.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def mean_cut(res):
        return res.mean("dynamic_edge_cut")

    rows = [
        (name, f"{mean_cut(res):.3f}", res.total_moves, len(res.events))
        for name, res in results.items()
    ]
    write_artifact(
        out_dir, "ablation_threshold.txt",
        ascii_table(["thresholds", "dyn edge-cut", "moves", "repartitions"],
                    rows, title=f"ABL-THRESH — TR-METIS trigger sweep, k={K}"),
    )

    # the frontier: tighter thresholds -> more repartitions and moves
    assert len(results["tight"].events) > len(results["loose"].events)
    assert results["tight"].total_moves > results["loose"].total_moves
    # measured finding (supports the paper's 'reduce unnecessary
    # repartitioning' motivation): repartitioning *more often* does NOT
    # buy better cut — each extra repartition uses a shorter, less
    # representative window graph, so tight triggers pay ~2-3x the moves
    # for equal-or-worse edge-cut.  All variants must still stay well
    # below the hashing level (~0.5 at k=2).
    assert mean_cut(results["tight"]) >= mean_cut(results["loose"]) - 0.02
    for res in results.values():
        assert mean_cut(res) < 0.40
