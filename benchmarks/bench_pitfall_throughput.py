"""EXT-PITFALL — throughput under each method's partitioning.

The paper's §I claim, measured: a badly partitioned sharded system
underdelivers — speedups stay far from the ideal k and correlate with
multi-shard ratio and load imbalance.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.pitfall import compute_pitfall, render_pitfall


@pytest.mark.benchmark(group="pitfall")
def test_pitfall_throughput(benchmark, runner, out_dir):
    rows = benchmark.pedantic(
        compute_pitfall, args=(runner,), kwargs={"k": 8, "max_interactions": 8000},
        rounds=1, iterations=1,
    )
    write_artifact(out_dir, "pitfall_throughput.txt", render_pitfall(rows))

    base = rows[0]
    assert base.method == "single-shard"
    sharded = {r.method: r for r in rows[1:]}

    # the pitfall: nobody gets the ideal 8x; random/hash placements sit
    # well under half of it
    for r in sharded.values():
        assert r.speedup_vs_single < 8.0
    assert sharded["random"].speedup_vs_single < 4.0
    assert sharded["hash"].speedup_vs_single < 4.0

    # sanity: every sharded run still completes all transactions it was
    # offered and reports consistent ratios
    for r in sharded.values():
        assert 0.0 <= r.multi_shard_ratio <= 1.0
        assert r.throughput > 0
