"""WARM-METIS — cold vs warm-started periodic repartitioning.

The paper's Method 3 repartitions the entire cumulative graph every two
weeks; after the single-pass replay engine, that periodic full-graph
partitioning dominates method-comparison wall-clock (~95% of the paper
five-method set).  This benchmark measures the warm-start pipeline that
attacks it, period by period over the benchmark timeline:

* **cold** — what every period paid before: build the cumulative CSR
  graph from scratch and run the full multilevel partitioner;
* **warm** — the incremental pipeline: extend the
  :class:`~repro.metis.graph.ColumnarCSRBuilder` by the new rows only,
  project the previous period's assignment onto the grown graph and
  boundary-refine (``part_graph(warm_start=...)``), with a
  :class:`~repro.metis.coarsen.LadderCache` amortising cold restarts.

Correctness is asserted unconditionally: ``warm_start=None`` stays
bit-identical to the plain cold call, warm assignments cover every
vertex within the balance tolerance, and quality (edge cut) stays in
the cold path's ballpark.  Timing assertions are opt-in via
``REPRO_BENCH_STRICT`` (single-round timings on shared CI runners are
noisy); the measured numbers land in ``benchmarks/out/warm_metis.txt``.
"""

import os
import time

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.graph.builder import build_graph
from repro.graph.columnar import ColumnarLog
from repro.graph.snapshot import REPARTITION_PERIOD
from repro.graph.undirected import collapse_to_undirected
from repro.metis import ColumnarCSRBuilder, CSRGraph, LadderCache, part_graph

K = 4
SEED = 7


def _period_bounds(clog: ColumnarLog):
    """Row index of each period end, paper cadence (two weeks)."""
    bounds = []
    t = clog.first_timestamp + REPARTITION_PERIOD
    end = clog.last_timestamp + 1.0
    while t < end + REPARTITION_PERIOD:
        hi = clog.index_at(min(t, end))
        if bounds and hi == bounds[-1]:
            if t >= end:
                break
            t += REPARTITION_PERIOD
            continue
        if hi > 0:
            bounds.append(hi)
        if t >= end:
            break
        t += REPARTITION_PERIOD
    return bounds


@pytest.mark.benchmark(group="warm-metis")
def test_warm_repartitioning_beats_cold(runner, out_dir):
    clog = ColumnarLog(runner.workload.builder.log)
    bounds = _period_bounds(clog)
    assert len(bounds) >= 3, "benchmark timeline too short for periods"

    # cold: every period rebuilds the cumulative graph and partitions
    # from scratch (the pre-warm-start cost model)
    cold_times, cold_results = [], []
    for hi in bounds:
        t0 = time.perf_counter()
        csr = CSRGraph.from_columnar(clog, 0, hi)
        res = part_graph(csr, K, seed=SEED) if csr.num_vertices >= K else None
        cold_times.append(time.perf_counter() - t0)
        cold_results.append(res)

    # cold-path bit-identity: warm_start=None must change nothing
    final_csr = CSRGraph.from_columnar(clog, 0, bounds[-1])
    ref = part_graph(final_csr, K, seed=SEED)
    ref_none = part_graph(final_csr, K, seed=SEED, warm_start=None)
    assert ref.assignment == ref_none.assignment
    assert ref.edge_cut == ref_none.edge_cut

    # warm: incremental CSR accumulation + warm-started partitioning
    builder = ColumnarCSRBuilder(clog)
    cache = LadderCache()
    prev = None
    warm_times, warm_results = [], []
    for hi in bounds:
        t0 = time.perf_counter()
        builder.advance(hi)
        res = None
        if builder.num_vertices >= K:
            csr = builder.snapshot()
            res = part_graph(
                csr, K, seed=SEED, warm_start=prev, warm_cache=cache
            )
            prev = res.assignment
        warm_times.append(time.perf_counter() - t0)
        warm_results.append(res)

    rows = []
    speedups = []
    for i, hi in enumerate(bounds):
        c, w = cold_results[i], warm_results[i]
        if c is None or w is None:
            continue
        assert set(w.assignment) == set(c.assignment)  # same vertex set
        assert all(0 <= p < K for p in w.assignment.values())
        # tolerance ballpark (ubfactor + refine slack), floored by the
        # integer granularity bound on tiny graphs (ceil(n/k) per part)
        n = len(w.assignment)
        granularity = (-(-n // K)) * K / n
        assert w.balance <= max(1.5, granularity)
        speedup = cold_times[i] / warm_times[i] if warm_times[i] > 0 else float("inf")
        if i >= 1:
            speedups.append(speedup)
        if i % 8 == 0 or i == len(bounds) - 1:
            rows.append((
                i + 1, len(c.assignment),
                f"{cold_times[i]*1e3:.1f}", f"{warm_times[i]*1e3:.1f}",
                f"{speedup:.1f}x",
                c.edge_cut, w.edge_cut,
                f"{c.balance:.3f}", f"{w.balance:.3f}",
                "warm" if w.warm else "cold",
            ))

    mean_speedup = sum(speedups) / len(speedups)
    total_cold = sum(cold_times)
    total_warm = sum(warm_times)

    # quality guard: warm cuts must stay in the cold ballpark overall
    cut_ratios = [
        w.edge_cut / c.edge_cut
        for c, w in zip(cold_results, warm_results)
        if c is not None and w is not None and c.edge_cut > 0
    ]
    mean_cut_ratio = sum(cut_ratios) / len(cut_ratios) if cut_ratios else 1.0
    assert mean_cut_ratio < 1.5, f"warm cuts degraded: mean ratio {mean_cut_ratio:.2f}"

    table = ascii_table(
        ["period", "|V|", "cold (ms)", "warm (ms)", "speedup",
         "cold cut", "warm cut", "cold bal", "warm bal", "path"],
        rows,
        title=(
            "WARM-METIS — periodic full-graph repartitioning, "
            f"k={K}, {len(bounds)} periods (every 8th shown)"
        ),
    )
    summary = (
        f"\ntotals: cold {total_cold:.3f}s, warm {total_warm:.3f}s "
        f"({total_cold / total_warm:.1f}x);  "
        f"mean per-period speedup after period 1: {mean_speedup:.1f}x;  "
        f"mean warm/cold cut ratio: {mean_cut_ratio:.2f}"
    )
    write_artifact(out_dir, "warm_metis.txt", table + summary)

    if os.environ.get("REPRO_BENCH_STRICT"):
        assert mean_speedup >= 1.5, (
            f"warm repartitioning not >=1.5x faster: {mean_speedup:.2f}x"
        )


@pytest.mark.benchmark(group="warm-metis")
def test_columnar_csr_beats_digraph_rebuild(runner, out_dir):
    """The dense-index CSR build vs the digraph→collapse→CSR pipeline."""
    log = runner.workload.builder.log
    clog = ColumnarLog(log)

    t0 = time.perf_counter()
    g = build_graph(log)
    und = collapse_to_undirected(g, unit_vertex_weights=True)
    csr_old = CSRGraph.from_undirected(und)
    t_digraph = time.perf_counter() - t0

    t0 = time.perf_counter()
    csr_new = CSRGraph.from_columnar(clog)
    t_columnar = time.perf_counter() - t0

    # same graph up to vertex renumbering: compare edge-weight multisets
    # and vertex weights keyed by original ids
    def as_dicts(csr):
        ids = csr.orig_ids
        edges = {}
        for v in range(csr.num_vertices):
            for i in range(csr.xadj[v], csr.xadj[v + 1]):
                u = csr.adjncy[i]
                key = (min(ids[v], ids[u]), max(ids[v], ids[u]))
                if key[0] != key[1]:
                    edges[key] = csr.adjwgt[i]
        vw = {ids[v]: csr.vwgt[v] for v in range(csr.num_vertices)}
        return edges, vw

    assert as_dicts(csr_old) == as_dicts(csr_new)

    table = ascii_table(
        ["pipeline", "seconds"],
        [
            ("build_graph + collapse + from_undirected", f"{t_digraph:.3f}"),
            ("CSRGraph.from_columnar (dense indices)", f"{t_columnar:.3f}"),
        ],
        title=(
            f"cumulative CSR build, |log|={len(clog)}, |V|={clog.num_vertices} "
            f"— {t_digraph / t_columnar:.1f}x"
        ),
    )
    write_artifact(out_dir, "warm_metis_csr_build.txt", table)

    if os.environ.get("REPRO_BENCH_STRICT"):
        assert t_columnar < t_digraph
