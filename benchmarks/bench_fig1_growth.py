"""FIG1 — Ethereum graph evolution (paper Fig. 1).

Regenerates the vertices/edges-per-month growth series and checks the
paper's shape: exponential growth to the attack, a burst inside the
attack window, superlinear growth afterwards.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.fig1 import attack_growth_factor, compute_fig1, render_fig1
from repro.ethereum.history import ATTACK_END, ATTACK_START


@pytest.mark.benchmark(group="fig1")
def test_fig1_growth(benchmark, runner, out_dir):
    workload = runner.workload  # generate outside the timed section

    points = benchmark.pedantic(
        compute_fig1, args=(workload,), rounds=1, iterations=1
    )
    write_artifact(out_dir, "fig1_growth.txt", render_fig1(points))

    verts = [p.vertices for p in points]
    assert verts == sorted(verts), "vertex count must be monotone"
    assert attack_growth_factor(points) > 3.0, "attack burst missing"
    # superlinear tail: the last quarter of the timeline adds more
    # interactions than the first half
    quarter = len(points) // 4
    tail = points[-1].interactions - points[-quarter].interactions
    head = points[len(points) // 2].interactions
    assert tail > head
