"""Substrate micro-benchmarks: EVM-lite, workload generation, replay.

Not a paper artifact — these track the performance of the pieces every
figure depends on, so regressions surface here before they slow the
figure benches down.
"""

import pytest

from repro.core.hashing import HashPartitioner
from repro.core.replay import ReplayEngine
from repro.ethereum import contracts as programs
from repro.ethereum.evm import EVM
from repro.ethereum.state import WorldState
from repro.ethereum.transaction import Transaction
from repro.ethereum.workload import WorkloadConfig, generate_history
from repro.graph.builder import build_graph
from repro.graph.snapshot import HOUR


@pytest.mark.benchmark(group="substrate")
def test_evm_token_transfer_throughput(benchmark):
    world = WorldState()
    evm = EVM(world)
    sender = world.create_eoa(balance=10**15)
    recipient = world.create_eoa()
    token = world.create_contract(programs.token_code())
    world.discard_journal()
    counter = {"nonce": 0}

    def one_tx():
        tx = Transaction(
            tx_id=counter["nonce"], sender=sender.address, to=token.address,
            gas_limit=110_000, nonce=counter["nonce"],
            data=(recipient.address, 1),
        )
        counter["nonce"] += 1
        receipt, _ = evm.execute_transaction(tx, 1.0)
        assert receipt.success

    benchmark(one_tx)


@pytest.mark.benchmark(group="substrate")
def test_workload_generation_tiny(benchmark):
    result = benchmark.pedantic(
        lambda: generate_history(WorkloadConfig.tiny(seed=9)),
        rounds=1, iterations=1,
    )
    assert result.num_transactions > 500


@pytest.mark.benchmark(group="substrate")
def test_graph_build_throughput(benchmark, runner):
    log = runner.workload.builder.log
    graph = benchmark.pedantic(lambda: build_graph(log), rounds=1, iterations=1)
    assert graph.num_vertices > 1000


@pytest.mark.benchmark(group="substrate")
def test_replay_hash_throughput(benchmark, runner):
    log = runner.workload.builder.log
    result = benchmark.pedantic(
        lambda: ReplayEngine(log, HashPartitioner(8), metric_window=24 * HOUR).run(),
        rounds=1, iterations=1,
    )
    assert result.total_moves == 0
