"""FIG2 — early hub-contract subgraph (paper Fig. 2).

Regenerates the September/October-2015 ego subgraph around the busiest
early contract and checks the structural facts the paper states.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.fig2 import compute_fig2, contracts_without_incoming, render_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_subgraph(benchmark, runner, out_dir):
    workload = runner.workload

    report = benchmark.pedantic(
        compute_fig2, args=(workload,), rounds=1, iterations=1
    )
    assert report is not None
    write_artifact(out_dir, "fig2_subgraph.txt", render_fig2(report))

    assert report.num_contracts >= 1
    assert report.num_accounts >= 1
    assert report.graph.num_edges >= report.graph.num_vertices - 1
    # the paper: no contract in the complete graph lacks an incoming edge
    assert contracts_without_incoming(workload.graph) == 0
