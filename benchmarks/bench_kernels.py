"""KERNELS — per-kernel microloop gates + the paper-scale sweep.

Two claims are enforced here, matching the kernel layer's contract
(``src/repro/kernels``):

* **micro gates** — every kernel a backend lists in its
  ``ACCELERATED`` set must beat the ``pure`` reference by >= 3x on its
  microloop over this run's workload columns.  Backends deliberately
  claim only what measures true at the paper's workload shape: numpy
  claims the whole-array kernels (window accounting over large ranges,
  static-cut recounts, CSR cut scans) and *not* the per-metric-window
  stream kernels, where ~100-row windows make the per-call overhead
  dominate; the stdlib ``array`` backend claims none and exists as the
  no-dependency second implementation.

* **paper-scale sweep** — the five-method fig5 grid
  (``PAPER_ORDER`` x k in {2, 4, 8}, warm METIS family) replayed from
  an exported v3 trace must produce byte-identical ``ResultSet``
  output under every installed backend, and the per-method wall-clock
  split lands in ``benchmarks/out/paper_scale_sweep.txt``.

Timing gates follow the house rule: asserted when the scale is
``medium``/``large`` or ``REPRO_BENCH_STRICT`` is set (single-round
small-scale timings on shared runners are noise); the measured table
is always written.
"""

import os
import time
from array import array

import pytest

from benchmarks.conftest import write_artifact
from repro import kernels
from repro.analysis.render import ascii_table
from repro.experiments.run import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.graph.columnar import ColumnarLog
from repro.graph.io import write_columnar
from repro.kernels import StreamState
from repro.metis.graph import CSRGraph

GATE = 3.0
SWEEP_METHODS = (
    "hash", "kl", "metis?warm=true", "p-metis?warm=true", "tr-metis?warm=true",
)
SWEEP_KS = (2, 4, 8)


def _gating(bench_scale: str) -> bool:
    return bench_scale in ("medium", "large") or bool(
        os.environ.get("REPRO_BENCH_STRICT")
    )


def _best_of(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _micro_loops(clog: ColumnarLog):
    """Name -> zero-arg microloop, per backend resolution at call time.

    Each loop is the kernel's natural batch unit at this scale: the
    whole column range (what cold starts, recounts and snapshots pay)
    — the unit the ACCELERATED speedup claims are made on.
    """
    ts, src, dst = clog.timestamps(), clog.src_indices(), clog.dst_indices()
    tx = clog.tx_ids()
    sk, dk = clog.src_kind_codes(), clog.dst_kind_codes()
    n = len(clog)
    k = 4
    shard = array("i", [(7 * v) % k for v in range(clog.num_vertices)])

    with kernels.using_backend("pure"):
        kp = kernels.active()
        batch = kp.window_pass(ts, src, dst, tx, sk, dk, 0, n, StreamState())
        state = StreamState()
        state.record_new_edges(batch.new_edges)
        xadj, adjncy, adjwgt, vwgt, _ = kp.csr_from_window(src, dst, 0, n, "unit")
    graph = CSRGraph(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt)
    part = [shard[v] for v in range(graph.num_vertices)]
    part_holes = list(part)
    for v in range(0, len(part_holes), 7):
        part_holes[v] = -1
    bisect = [p % 2 for p in part]
    with kernels.using_backend("pure"):
        boundary = kernels.active().boundary_list(graph, part)

    def acc_loop():
        acc = kernels.active().CSRAccumulator()
        acc.advance(src, dst, 0, n)
        return acc.snapshot("unit")

    kr = kernels.active  # resolved inside each lambda: current backend
    return {
        "window_pass": lambda: kr().window_pass(
            ts, src, dst, tx, sk, dk, 0, n, StreamState()),
        "account_window": lambda: kr().account_window(
            src, dst, 0, n, batch.new_edges, shard, k),
        "static_cut_count": lambda: kr().static_cut_count(
            state.esrc, state.edst, shard),
        "max_index": lambda: kr().max_index(src, dst, 0, n),
        "csr_accumulate": acc_loop,
        "csr_from_window": lambda: kr().csr_from_window(src, dst, 0, n, "unit"),
        "graph_batch": lambda: kr().graph_batch(ts, src, dst, sk, dk, 0, n),
        "part_weights": lambda: kr().part_weights(graph, part, k),
        "boundary_list": lambda: kr().boundary_list(graph, part),
        "cut_value": lambda: kr().cut_value(graph, part),
        "unassigned_list": lambda: kr().unassigned_list(part_holes),
        # refinement batch kernels: boundary-row connectivity, FM seed
        # gains, whole-graph KL gather, FM gain bound
        "conn_matrix": lambda: kr().conn_matrix(graph, part, k, boundary),
        "gain_vector": lambda: kr().gain_vector(graph, bisect, boundary),
        "kl_proposals": lambda: kr().kl_proposals(graph, part, k, 1),
        "max_weighted_degree": lambda: kr().max_weighted_degree(graph),
    }


@pytest.mark.benchmark(group="kernels")
def test_kernel_micro_gates(runner, bench_scale, out_dir):
    clog = ColumnarLog(runner.workload.builder.log)
    loops = _micro_loops(clog)
    backends = [b for b in kernels.available_backends() if b != "pure"]

    with kernels.using_backend("pure"):
        pure_times = {name: _best_of(fn) for name, fn in loops.items()}

    rows = []
    failures = []
    for backend in backends:
        with kernels.using_backend(backend):
            claimed = getattr(kernels.active(), "ACCELERATED", frozenset())
            for name, fn in loops.items():
                t = _best_of(fn)
                speedup = pure_times[name] / t if t > 0 else float("inf")
                gated = name in claimed
                rows.append((
                    name, backend,
                    f"{pure_times[name] * 1e3:.2f}", f"{t * 1e3:.2f}",
                    f"{speedup:.2f}x", "yes" if gated else "",
                ))
                if gated and speedup < GATE:
                    failures.append(f"{backend}:{name} {speedup:.2f}x < {GATE}x")

    table = ascii_table(
        ("kernel", "backend", "pure ms", "backend ms", "speedup", ">=3x gate"),
        rows,
    )
    write_artifact(
        out_dir, "kernels_micro.txt",
        f"kernel microloops, scale={bench_scale}, rows={len(clog)}\n{table}",
    )
    if _gating(bench_scale):
        assert not failures, "; ".join(failures)


@pytest.mark.benchmark(group="kernels")
def test_paper_scale_sweep(runner, bench_scale, out_dir, tmp_path):
    """Five-method fig5 grid from an exported v3 trace, every backend.

    Byte-identity of the serialized ResultSet across backends is
    asserted unconditionally — it is the kernel layer's core contract.
    The artifact records the per-method wall-clock split and the
    per-backend grid totals.
    """
    trace = tmp_path / f"sweep_{bench_scale}.rct"
    clog = ColumnarLog(runner.workload.builder.log)
    write_columnar(clog, trace, version=3)
    spec = ExperimentSpec(
        methods=SWEEP_METHODS, ks=SWEEP_KS, window_hours=24.0,
        source=str(trace),
    )

    # grid totals: interleaved rounds + best-of + process CPU time,
    # because a single sequential wall-clock pass per backend cannot
    # resolve a ~20% backend gap on a shared runner (order effects and
    # scheduler noise are the same magnitude)
    backends = list(kernels.available_backends())
    dumps = {}
    totals = {}
    for rnd in range(2):
        for backend in backends if rnd % 2 == 0 else reversed(backends):
            with kernels.using_backend(backend):
                t0 = time.process_time()
                text = run_experiment(spec).dumps()
                elapsed = time.process_time() - t0
            dumps.setdefault(backend, text)
            totals[backend] = min(totals.get(backend, elapsed), elapsed)
    reference = dumps["pure"]
    for backend, text in dumps.items():
        assert text == reference, (
            f"ResultSet under {backend} diverges from pure — "
            "kernel bit-identity contract broken"
        )

    # per-method split (shared-stream pass per method, all ks at once)
    split = []
    for method in SWEEP_METHODS:
        single = ExperimentSpec(
            methods=(method,), ks=SWEEP_KS, window_hours=24.0,
            source=str(trace),
        )
        t0 = time.perf_counter()
        run_experiment(single)
        split.append((method, time.perf_counter() - t0))

    grid_cells = len(SWEEP_METHODS) * len(SWEEP_KS)
    lines = [
        f"paper-scale five-method sweep  (scale={bench_scale}, "
        f"rows={len(clog)}, v3 trace, k in {list(SWEEP_KS)}, "
        f"{grid_cells} cells, warm METIS)",
        "",
        "per-method wall-clock split (single-method pass over all ks):",
        ascii_table(
            ("method", "seconds", "share"),
            [
                (m, f"{s:.2f}", f"{100 * s / sum(s for _, s in split):.0f}%")
                for m, s in split
            ],
        ),
        "",
        "full-grid totals per kernel backend (best of 2 interleaved "
        "rounds,",
        "process CPU time; ResultSet byte-identical across all):",
        ascii_table(
            ("backend", "seconds", "vs pure"),
            [
                (b, f"{t:.2f}", f"{totals['pure'] / t:.2f}x")
                for b, t in totals.items()
            ],
        ),
        "",
        "note: KL repartitioning and METIS refinement now ride the batched",
        "refinement kernels (conn_matrix / gain_vector / kl_proposals), so",
        "backend choice moves the whole-grid total ~15-20% (it used to be",
        "~10%: the refiners were backend-independent python loops); the",
        ">=3x kernel speedups are enforced per-microloop — see",
        "kernels_micro.txt.  absolute seconds are machine-state dependent:",
        "compare backends within one run, not across recorded artifacts.",
    ]
    write_artifact(out_dir, "paper_scale_sweep.txt", "\n".join(lines))
