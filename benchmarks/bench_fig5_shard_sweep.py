"""FIG5 + TAB-HASH8 — metrics versus shard count (paper Fig. 5).

Sweeps k ∈ {2, 4, 8} for all five methods over the full history and
checks the paper's orderings, including the §II-C headline number:
hashing at k = 8 makes ~88% of transactions multi-shard.

``compute_fig5`` replays the whole (method × k) grid in a single pass
over the shared log (``ExperimentRunner.replay_grid``): methods with
different shard counts coexist in one stream, so the cumulative graph
is built once instead of fifteen times.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.fig5 import compute_fig5, hash_k8_multishard, render_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_shard_sweep(benchmark, runner, out_dir):
    rows = benchmark.pedantic(compute_fig5, args=(runner,), rounds=1, iterations=1)
    write_artifact(out_dir, "fig5_shard_sweep.txt", render_fig5(rows))

    by = {(r.method, r.k): r for r in rows}
    methods = {r.method for r in rows}

    # edge-cut worsens with k for every method
    for m in methods:
        assert by[(m, 2)].dynamic_edge_cut < by[(m, 4)].dynamic_edge_cut + 0.03
        assert by[(m, 2)].dynamic_edge_cut < by[(m, 8)].dynamic_edge_cut

    for k in (2, 4, 8):
        # METIS-family beats hashing and KL on edge-cut...
        assert by[("metis", k)].dynamic_edge_cut < by[("hash", k)].dynamic_edge_cut
        assert by[("metis", k)].dynamic_edge_cut < by[("kl", k)].dynamic_edge_cut
        # ...hashing never moves anything...
        assert by[("hash", k)].total_moves == 0
        # ...and METIS moves dwarf the windowed variants'
        assert by[("metis", k)].total_moves > 3 * by[("p-metis", k)].total_moves
        assert by[("tr-metis", k)].total_moves < by[("p-metis", k)].total_moves

    # hashing and METIS take extreme ends of the balance/cut tradeoff
    hash_bal_wins = sum(
        1 for k in (2, 4, 8)
        if by[("hash", k)].normalized_dynamic_balance
        < by[("metis", k)].normalized_dynamic_balance
    )
    assert hash_bal_wins >= 2

    # TAB-HASH8: the 88% headline (paper: 0.88; accept a band)
    ratio = hash_k8_multishard(rows)
    assert 0.80 <= ratio <= 0.95, f"hash@k=8 multi-shard ratio {ratio}"
