"""EXT-MIGRATE — 2PC versus state-migration cross-shard handling.

The paper (§I) names two solution classes for multi-shard requests:
(a) distributed execution (Spanner / S-SMR → our 2PC mode) and
(b) moving state to one shard (Dynamic S-SMR → our migrate mode).
This benchmark runs the same workload tail through both modes under
two assignments (hash = high edge-cut, metis = low edge-cut) and
reports throughput, latency and migration volume — showing *when* each
class wins and how partition quality changes the answer.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.sharding.coordinator import ShardedExecution, ShardedExecutionConfig

K = 4


@pytest.mark.benchmark(group="state-migration")
def test_2pc_vs_migrate(benchmark, runner, out_dir):
    log = runner.workload.builder.log[-8000:]
    state = runner.workload.state

    def run_all():
        out = {}
        for method in ("hash", "metis"):
            assignment = runner.replay(method, K, seed=1).assignment.as_dict()
            for mode in ("2pc", "migrate"):
                cfg = ShardedExecutionConfig(mode=mode)
                ex = ShardedExecution(K, assignment, cfg, state=state)
                rate = 3.0 * K / cfg.service_time
                out[(method, mode)] = ex.replay(log, arrival_rate=rate)
        return out

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (method, mode, f"{rep.throughput:.0f}",
         f"{rep.latency.p99 * 1000:.1f}ms", rep.multi_shard,
         rep.migrations, f"{rep.migration_bytes / 1e6:.2f}MB")
        for (method, mode), rep in sorted(reports.items())
    ]
    write_artifact(
        out_dir, "state_migration.txt",
        ascii_table(
            ["assignment", "mode", "tx/s", "p99", "multi-shard txs",
             "migrations", "state moved"],
            rows, title=f"EXT-MIGRATE — cross-shard handling, k={K}",
        ),
    )

    # migrate mode reduces the *recurring* multi-shard population:
    # after hot vertices co-locate, fewer transactions span shards
    for method in ("hash", "metis"):
        assert (reports[(method, "migrate")].multi_shard
                < reports[(method, "2pc")].multi_shard)
        assert reports[(method, "migrate")].migrations > 0
    # a better starting partition needs less state motion
    assert (reports[("metis", "migrate")].migration_bytes
            < reports[("hash", "migrate")].migration_bytes)
