"""EXT-AWARE — what if applications were designed for sharding?

The paper's first caveat (§IV): "we assess Ethereum using the real
workload, which was not created for a sharded system ... If sharding is
made visible to developers, then multi-shard operations could be
sometimes avoided, at the expense of more complex applications."

We can measure that counterfactual: the workload generator's
``p_intra_community`` knob *is* application locality.  Sweeping it from
0.55 (promiscuous dApps) to 0.97 (shard-aware dApps) and replaying the
same partitioning method shows how much of the paper's edge-cut is
workload-inherent versus method-inherent.

Measured finding: full-graph METIS converts locality into edge-cut
(≈0.27 → ≈0.17 over the sweep), but a *windowed* repartitioner
(P-METIS) barely benefits — its cut is dominated by repartition lag and
between-repartition placement, not by the workload's community
promiscuity.  So the paper's caveat is only half right: application
redesign helps, but only when the partitioning method can actually see
the whole structure.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.core.registry import make_method
from repro.core.replay import ReplayEngine
from repro.ethereum.workload import WorkloadConfig, generate_history
from repro.graph.snapshot import HOUR

K = 4
LOCALITIES = (0.55, 0.75, 0.85, 0.97)


@pytest.mark.benchmark(group="sharding-aware")
def test_application_locality_sweep(benchmark, out_dir):
    def run_all():
        out = {}
        for p_intra in LOCALITIES:
            cfg = WorkloadConfig(
                seed=42, total_transactions=4_000, step_hours=24.0,
                p_intra_community=p_intra, p_inherit_community=0.95,
            )
            history = generate_history(cfg)
            for method in ("metis", "p-metis"):
                replay = ReplayEngine(
                    history.builder.log, make_method(method, K, seed=1),
                    metric_window=24 * HOUR,
                ).run()
                out[(p_intra, method)] = replay
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def mean_cut(res):
        pts = [p for p in res.series.points if p.interactions > 0]
        return sum(p.dynamic_edge_cut for p in pts) / len(pts)

    rows = [
        (f"{p:.2f}",
         f"{mean_cut(results[(p, 'metis')]):.3f}",
         f"{mean_cut(results[(p, 'p-metis')]):.3f}")
        for p in LOCALITIES
    ]
    write_artifact(
        out_dir, "sharding_aware.txt",
        ascii_table(
            ["p(intra-community)", "METIS dyn edge-cut", "P-METIS dyn edge-cut"],
            rows,
            title=f"EXT-AWARE — application locality vs achievable cut, k={K}",
        ),
    )

    metis_cuts = [mean_cut(results[(p, "metis")]) for p in LOCALITIES]
    pmetis_cuts = [mean_cut(results[(p, "p-metis")]) for p in LOCALITIES]
    # full-graph METIS converts locality into edge-cut...
    assert metis_cuts[-1] < metis_cuts[0] - 0.06
    # ...while the windowed variant barely benefits (lag-dominated)
    assert abs(pmetis_cuts[-1] - pmetis_cuts[0]) < 0.08
    # and at every locality the full-graph view wins
    for p in LOCALITIES:
        assert mean_cut(results[(p, "metis")]) < mean_cut(results[(p, "p-metis")])
