"""EXP-PARALLEL — declarative sweep fan-out: jobs=1 vs jobs=2.

Runs the paper's Fig. 5 grid (five methods × k ∈ {2, 4, 8}) through
``run_experiment`` sequentially and with a two-worker process pool,
asserts the ResultSets are identical (the parallel fan-out is
bit-identical by construction — each cell's method carries its own RNG
and state), and records the wall-clock split as an artifact.

Also exercised: on-disk resume — a second sequential run against the
store must execute zero cells and return an equal ResultSet.
"""

import os
import time

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.core.registry import PAPER_ORDER
from repro.experiments import ExperimentSpec, ResultStore, run_experiment

KS = (2, 4, 8)


@pytest.mark.benchmark(group="experiments")
def test_parallel_sweep_speedup(benchmark, runner, bench_scale, out_dir, tmp_path):
    spec = ExperimentSpec(
        scale=bench_scale,
        workload_seed=runner.seed,
        methods=tuple(PAPER_ORDER),
        ks=KS,
        window_hours=runner.window_hours,
    )
    workload = runner.workload  # generate outside the timed regions

    t0 = time.perf_counter()
    seq = run_experiment(spec, jobs=1, workload=workload)
    t_seq = time.perf_counter() - t0

    def run_parallel():
        return run_experiment(spec, jobs=2, workload=workload)

    t0 = time.perf_counter()
    par = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    t_par = time.perf_counter() - t0

    # parallel fan-out must be bit-identical to the sequential pass
    assert par == seq

    # resume: persist, then re-run — zero cells may execute
    store = ResultStore(tmp_path / "results")
    run_experiment(spec, jobs=1, workload=workload, store=store)
    t0 = time.perf_counter()
    executed = []
    resumed = run_experiment(
        spec, workload=workload, store=store,
        progress=lambda key, outcome: executed.append((key, outcome)),
    )
    t_resume = time.perf_counter() - t0
    assert resumed == seq
    assert all(outcome == "loaded" for _, outcome in executed)
    assert len(executed) == len(spec.cells())

    speedup = t_seq / t_par if t_par else float("nan")
    rows = [
        ("jobs=1 (one shared pass)", f"{t_seq:.2f}s", ""),
        ("jobs=2 (process pool)", f"{t_par:.2f}s", f"{speedup:.2f}x"),
        ("resume from store", f"{t_resume:.2f}s",
         f"{t_seq / t_resume if t_resume else float('nan'):.0f}x"),
    ]
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    write_artifact(
        out_dir, "experiments_parallel.txt",
        ascii_table(
            ["configuration", "wall-clock", "speedup"],
            rows,
            title=(
                f"EXP-PARALLEL — fig5 sweep ({len(spec.cells())} cells, "
                f"scale={bench_scale}) via run_experiment"
            ),
        )
        + f"\nhost cores: {cores} (pool speedup is bounded by physical "
        "parallelism; on 1 core this measures fan-out overhead)",
    )

    # the pool must not be pathologically slower than the shared pass
    # (cost-balanced chunks; METIS dominates, so expect real speedup at
    # small+ scales, but keep the assertion lenient for tiny CI boxes)
    assert t_par < 1.5 * t_seq
