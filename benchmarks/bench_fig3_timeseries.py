"""FIG3 — hashing vs METIS per-window series at k = 2 (paper Fig. 3).

Expected reproduced shape (paper §III):

* hashing: static balance ≈ 1, static edge-cut ≈ 0.5, zero moves;
* METIS: much lower edge-cut both static and dynamic, two-week
  repartitionings, dynamic balance drifting toward 2 after the attack.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.fig3 import compute_fig3, render_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_hash_vs_metis(benchmark, runner, out_dir):
    data = benchmark.pedantic(compute_fig3, args=(runner,), rounds=1, iterations=1)
    write_artifact(out_dir, "fig3_timeseries.txt", render_fig3(data))

    s = data.summary()
    assert 0.40 <= s["hash_static_cut"] <= 0.60
    assert s["hash_static_balance"] < 1.25
    assert s["hash_moves"] == 0
    assert s["metis_dynamic_cut"] < 0.6 * s["hash_dynamic_cut"]
    assert s["metis_static_cut"] < 0.75 * s["hash_static_cut"]
    assert s["metis_repartitions"] >= 50          # ~biweekly over 2.4 years
    assert s["metis_post_attack_dyn_balance"] > 1.45   # the anomaly
    assert s["metis_moves"] > 10 * s["metis_repartitions"]
