"""ABL-METIS — is our METIS substitute good enough?

The paper's conclusions rest on METIS producing low-cut balanced
partitions.  This benchmark validates the from-scratch multilevel
partitioner against known optima and weaker baselines on standard graph
families, and times it on a blockchain-like power-law graph.
"""

import random

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.graph import generators as gen
from repro.graph.undirected import collapse_to_undirected
from repro.metis import part_graph


def random_cut(digraph, k, seed):
    und = collapse_to_undirected(digraph)
    rng = random.Random(seed)
    assign = {v: rng.randrange(k) for v in und.vertices()}
    return sum(w for u, v, w in und.edges() if assign[u] != assign[v])


@pytest.mark.benchmark(group="metis-quality")
def test_partitioner_quality_suite(benchmark, out_dir):
    rng = random.Random(11)
    suite = {
        "ring-400 (opt 2)": (gen.ring_graph(400), 2, 2),
        "grid-20x20 (opt 20)": (gen.grid_graph(20, 20), 2, 20),
        "cliques-4x20 (opt 0)": (gen.disjoint_cliques(4, 20), 4, 0),
        "communities-4x30": (
            gen.weighted_communities(4, 30, 10, 1, rng), 4, None,
        ),
        "powerlaw-1500": (gen.powerlaw_graph(1500, 3, rng), 8, None),
    }

    def run_all():
        rows = []
        for name, (g, k, optimum) in suite.items():
            res = part_graph(g, k, seed=3)
            rows.append((name, k, res.edge_cut, optimum,
                         random_cut(g, k, seed=5), round(res.balance, 3)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_artifact(
        out_dir, "metis_quality.txt",
        ascii_table(
            ["graph", "k", "multilevel cut", "optimum", "random cut", "balance"],
            rows, title="ABL-METIS — multilevel partitioner quality",
        ),
    )

    by_name = {r[0]: r for r in rows}
    assert by_name["ring-400 (opt 2)"][2] == 2
    assert by_name["grid-20x20 (opt 20)"][2] <= 30          # ≤ 1.5x optimum
    assert by_name["cliques-4x20 (opt 0)"][2] == 0
    for name, row in by_name.items():
        _, k, cut, _, rand, balance = row
        assert cut <= 0.8 * rand, f"{name}: {cut} not << random {rand}"
        assert balance <= 1.35


@pytest.mark.benchmark(group="metis-speed")
def test_partitioner_speed_powerlaw(benchmark):
    """Raw part_graph timing on a blockchain-like graph (real rounds)."""
    g = gen.powerlaw_graph(2000, 3, random.Random(5))
    result = benchmark(lambda: part_graph(g, 8, seed=1))
    assert result.edge_cut > 0


@pytest.mark.benchmark(group="metis-speed")
def test_partitioner_speed_communities(benchmark):
    g = gen.weighted_communities(8, 60, 8, 1, random.Random(6))
    result = benchmark(lambda: part_graph(g, 8, seed=1))
    assert result.balance <= 1.35


@pytest.mark.benchmark(group="metis-speed")
def test_partitioner_speed_direct_kway(benchmark):
    """kmetis-style direct scheme: one ladder, k-way refinement."""
    g = gen.powerlaw_graph(2000, 3, random.Random(5))
    result = benchmark(lambda: part_graph(g, 8, seed=1, scheme="direct"))
    assert result.edge_cut > 0
    assert result.balance <= 1.35


@pytest.mark.benchmark(group="metis-quality")
def test_direct_vs_recursive_quality(benchmark, out_dir):
    """The pmetis/kmetis tradeoff on a blockchain-like graph."""
    g = gen.powerlaw_graph(1500, 3, random.Random(9))

    def run_both():
        rec = part_graph(g, 8, seed=2, scheme="recursive")
        direct = part_graph(g, 8, seed=2, scheme="direct")
        return rec, direct

    rec, direct = benchmark.pedantic(run_both, rounds=1, iterations=1)
    write_artifact(
        out_dir, "metis_schemes.txt",
        ascii_table(
            ["scheme", "edge cut", "balance"],
            [("recursive (pmetis)", rec.edge_cut, f"{rec.balance:.3f}"),
             ("direct (kmetis)", direct.edge_cut, f"{direct.balance:.3f}")],
            title="ABL-METIS — recursive bisection vs direct k-way, k=8",
        ),
    )
    assert direct.edge_cut <= 1.4 * rec.edge_cut
    assert direct.balance <= 1.35
