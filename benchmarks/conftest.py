"""Shared benchmark fixtures.

The benchmarks regenerate every figure of the paper on the *small*
workload scale (full 886-day timeline, ~6k transactions) so the whole
suite completes in minutes.  Rendered figures are written to
``benchmarks/out/*.txt`` so the rows/series the paper reports survive
the run as inspectable artifacts.

Scale can be raised with ``REPRO_BENCH_SCALE=medium pytest benchmarks/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.runner import ExperimentRunner

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def runner(bench_scale) -> ExperimentRunner:
    return ExperimentRunner(scale=bench_scale, seed=42, metric_window_hours=24.0)


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: pathlib.Path, name: str, text: str) -> None:
    (out_dir / name).write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[artifact: benchmarks/out/{name}]")
