"""EXT-FENNEL — streaming placement versus the paper's five methods.

The design-space hole the paper leaves open: a method with HASH's
zero-move property that still respects edges.  FENNEL-style streaming
placement fills it; this bench positions it on the cut/balance/moves
landscape next to the paper's methods (k = 4, full history).

All six methods replay in a single pass over the shared log
(:class:`~repro.core.multireplay.MultiReplayEngine`), so the timed
region is one multi-method comparison run rather than six rebuilds of
the same cumulative graph.  The engine is timed directly — not through
the runner's memoising cache — so the measurement is cold regardless
of what other benchmarks ran first in the session.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table, format_si
from repro.core.multireplay import MultiReplayEngine
from repro.core.registry import PAPER_ORDER, make_method
from repro.graph.snapshot import HOUR

K = 4


@pytest.mark.benchmark(group="fennel")
def test_fennel_vs_paper_methods(benchmark, runner, out_dir):
    log = runner.workload.builder.log
    names = ["fennel"] + list(PAPER_ORDER)

    def run_all():
        methods = [make_method(n, K, seed=1) for n in names]
        replays = MultiReplayEngine(log, methods, metric_window=24 * HOUR).run()
        return dict(zip(names, replays))

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    fennel = results["fennel"]

    def mean(res, col):
        pts = [p for p in res.series.points if p.interactions > 0]
        return sum(getattr(p, col) for p in pts) / len(pts)

    rows = [
        (name, f"{mean(res, 'dynamic_edge_cut'):.3f}",
         f"{mean(res, 'dynamic_balance'):.3f}", format_si(res.total_moves))
        for name, res in results.items()
    ]
    write_artifact(
        out_dir, "fennel_comparison.txt",
        ascii_table(["method", "dyn edge-cut", "dyn balance", "moves"],
                    rows, title=f"EXT-FENNEL — streaming vs paper methods, k={K}"),
    )

    # fennel: zero moves like hash, but much better cut than hash
    assert fennel.total_moves == 0
    assert mean(fennel, "dynamic_edge_cut") < 0.8 * mean(results["hash"], "dynamic_edge_cut")
    # it cannot beat periodic repartitioning on cut (otherwise the
    # paper's whole moves-vs-cut tradeoff would be vacuous)
    assert mean(fennel, "dynamic_edge_cut") > mean(results["metis"], "dynamic_edge_cut")
