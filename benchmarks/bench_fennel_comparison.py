"""EXT-FENNEL — streaming placement versus the paper's five methods.

The design-space hole the paper leaves open: a method with HASH's
zero-move property that still respects edges.  FENNEL-style streaming
placement fills it; this bench positions it on the cut/balance/moves
landscape next to the paper's methods (k = 4, full history).

All six methods are one declarative experiment grid replayed in a
single pass over the shared log (``run_experiment`` without a store),
so the timed region is one multi-method comparison run rather than six
rebuilds of the same cumulative graph.  The run bypasses the runner's
memoising cache, so the measurement is cold regardless of what other
benchmarks ran first in the session.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table, format_si
from repro.core.registry import PAPER_ORDER
from repro.experiments import ExperimentSpec, run_experiment

K = 4


@pytest.mark.benchmark(group="fennel")
def test_fennel_vs_paper_methods(benchmark, runner, bench_scale, out_dir):
    names = ["fennel"] + list(PAPER_ORDER)
    spec = ExperimentSpec(
        scale=bench_scale,
        workload_seed=runner.seed,
        methods=tuple(names),
        ks=(K,),
        window_hours=runner.window_hours,
    )

    def run_all():
        rs = run_experiment(spec, workload=runner.workload)
        return {n: rs.get(n, K) for n in names}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    fennel = results["fennel"]

    def mean(res, col):
        return res.mean(col)

    rows = [
        (name, f"{mean(res, 'dynamic_edge_cut'):.3f}",
         f"{mean(res, 'dynamic_balance'):.3f}", format_si(res.total_moves))
        for name, res in results.items()
    ]
    write_artifact(
        out_dir, "fennel_comparison.txt",
        ascii_table(["method", "dyn edge-cut", "dyn balance", "moves"],
                    rows, title=f"EXT-FENNEL — streaming vs paper methods, k={K}"),
    )

    # fennel: zero moves like hash, but much better cut than hash
    assert fennel.total_moves == 0
    assert mean(fennel, "dynamic_edge_cut") < 0.8 * mean(results["hash"], "dynamic_edge_cut")
    # it cannot beat periodic repartitioning on cut (otherwise the
    # paper's whole moves-vs-cut tradeoff would be vacuous)
    assert mean(fennel, "dynamic_edge_cut") > mean(results["metis"], "dynamic_edge_cut")
