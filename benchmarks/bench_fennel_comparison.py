"""EXT-FENNEL — streaming placement versus the paper's five methods.

The design-space hole the paper leaves open: a method with HASH's
zero-move property that still respects edges.  FENNEL-style streaming
placement fills it; this bench positions it on the cut/balance/moves
landscape next to the paper's methods (k = 4, full history).
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table, format_si
from repro.core.registry import PAPER_ORDER, make_method
from repro.core.replay import ReplayEngine
from repro.graph.snapshot import HOUR

K = 4


@pytest.mark.benchmark(group="fennel")
def test_fennel_vs_paper_methods(benchmark, runner, out_dir):
    log = runner.workload.builder.log

    def run_fennel():
        method = make_method("fennel", K, seed=1)
        return ReplayEngine(log, method, metric_window=24 * HOUR).run()

    fennel = benchmark.pedantic(run_fennel, rounds=1, iterations=1)

    results = {"fennel": fennel}
    for name in PAPER_ORDER:
        results[name] = runner.replay(name, K, seed=1)

    def mean(res, col):
        pts = [p for p in res.series.points if p.interactions > 0]
        return sum(getattr(p, col) for p in pts) / len(pts)

    rows = [
        (name, f"{mean(res, 'dynamic_edge_cut'):.3f}",
         f"{mean(res, 'dynamic_balance'):.3f}", format_si(res.total_moves))
        for name, res in results.items()
    ]
    write_artifact(
        out_dir, "fennel_comparison.txt",
        ascii_table(["method", "dyn edge-cut", "dyn balance", "moves"],
                    rows, title=f"EXT-FENNEL — streaming vs paper methods, k={K}"),
    )

    # fennel: zero moves like hash, but much better cut than hash
    assert fennel.total_moves == 0
    assert mean(fennel, "dynamic_edge_cut") < 0.8 * mean(results["hash"], "dynamic_edge_cut")
    # it cannot beat periodic repartitioning on cut (otherwise the
    # paper's whole moves-vs-cut tradeoff would be vacuous)
    assert mean(fennel, "dynamic_edge_cut") > mean(results["metis"], "dynamic_edge_cut")
