"""LINT-CACHE — incremental reprolint vs cold whole-project analysis.

The interprocedural rules (RL011–RL013) made every lint run a
whole-project analysis: symbol table, call graph, taint propagation.
The content-hash cache must buy that cost back on the runs developers
actually repeat:

* **warm full hit** — nothing changed: findings replay from the cache
  without parsing a single file.  Gate: >= 5x faster than the cold
  run, findings byte-identical.
* **leaf edit** — one file touched: only that file is re-parsed, and
  the ``impacted`` set (the file plus its reverse call-graph closure)
  stays a proper subset of the tree — the cache's invalidation is
  *targeted*, not all-or-nothing.

The repo's ``src`` tree is copied to a scratch directory so cache
files and edits never touch the working tree.  Artifact:
``benchmarks/out/lint_cache.txt``.
"""

import pathlib
import shutil
import time

import pytest

from benchmarks.conftest import write_artifact
from repro.lint import lint_paths

REPO = pathlib.Path(__file__).resolve().parents[1]

#: a widely-imported module: its reverse closure is large enough to be
#: interesting but must stay well short of the whole tree
LEAF = "src/repro/graph/columnar.py"


def _timed(fn, rounds=1):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.benchmark(group="lint-cache")
def test_lint_cache_speedup_and_targeted_invalidation(out_dir, tmp_path):
    shutil.copytree(REPO / "src", tmp_path / "src")
    cache = tmp_path / "cache.json"

    def run(**kwargs):
        return lint_paths(
            [str(tmp_path / "src")],
            use_cache=True,
            cache_path=str(cache),
            **kwargs,
        )

    t_cold, cold = _timed(run)
    t_warm, warm = _timed(run, rounds=3)

    # warm runs replay findings without parsing anything
    assert warm.findings == cold.findings
    assert warm.suppressed == cold.suppressed
    assert warm.cache_stats["parsed"] == 0
    assert warm.cache_stats["hit"] == cold.files

    speedup = t_cold / t_warm
    assert speedup >= 5.0, (
        f"warm lint {t_warm:.3f}s vs cold {t_cold:.3f}s — only "
        f"{speedup:.1f}x, cache gate is 5x"
    )

    # --- leaf edit: re-parse one file, impact only its dependents ---
    leaf = tmp_path / LEAF
    leaf.write_text(leaf.read_text() + "\n_BENCH_CACHE_TOUCH = 1\n")
    t_edit, edited = _timed(run)

    leaf_rel = str(pathlib.PurePosixPath(LEAF))
    assert edited.cache_stats["parsed_files"] == [leaf_rel]
    impacted = edited.cache_stats["impacted_files"]
    assert leaf_rel in impacted
    # targeted invalidation: dependents yes, the whole tree no
    assert 1 < len(impacted) < cold.files
    # a benign edit shifts no findings
    assert [
        (f.path, f.rule) for f in edited.findings
    ] == [(f.path, f.rule) for f in cold.findings]

    lines = [
        "LINT-CACHE — incremental reprolint (src tree, all 13 rules)",
        "",
        f"files linted            {cold.files}",
        f"cold run                {t_cold * 1000:8.1f} ms",
        f"warm full hit           {t_warm * 1000:8.1f} ms   ({speedup:.1f}x, gate 5x)",
        f"leaf edit ({LEAF})",
        f"  re-run                {t_edit * 1000:8.1f} ms",
        f"  files re-parsed       {edited.cache_stats['parsed']}",
        f"  files impacted        {edited.cache_stats['impacted']} of {cold.files}",
        "",
        "warm findings identical to cold; leaf edit re-parses only the",
        "edited file and impacts only its reverse call-graph closure.",
    ]
    write_artifact(out_dir, "lint_cache.txt", "\n".join(lines) + "\n")
