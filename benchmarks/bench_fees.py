"""EXT-FEES — who pays for cross-shard traffic? (paper final remarks)

The paper closes by noting that computation, storage and bandwidth all
"play an important role in partitioning" and that "designing the
correct incentives is crucial".  This bench meters every executed
transaction along those three axes under each method's assignment and
reports the cross-shard fee share and the revenue imbalance across
shards — the economic mirror of edge-cut and balance.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.core.registry import PAPER_ORDER
from repro.ethereum.fees import account_replay
from repro.ethereum.workload import WorkloadGenerator

K = 4


def _traced_workload(scale_cfg):
    gen = WorkloadGenerator(scale_cfg)
    gen.chain._keep_traces = True
    return gen.run()


@pytest.mark.benchmark(group="fees")
def test_fee_attribution(benchmark, runner, out_dir):
    from repro.analysis.runner import config_for_scale
    from repro.core.replay import ReplayEngine
    from repro.core.registry import make_method
    from repro.graph.snapshot import HOUR

    # regenerate a tiny traced history (the shared workload drops traces)
    result = _traced_workload(config_for_scale("tiny", 42))
    pairs = list(zip(result.chain.receipts, result.chain.traces))
    log = result.builder.log

    def run_all():
        out = {}
        for name in PAPER_ORDER:
            replay = ReplayEngine(
                log, make_method(name, K, seed=1), metric_window=24 * HOUR
            ).run()
            out[name] = account_replay(pairs, replay.assignment.as_dict(), k=K)
        return out

    accounts = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (name, f"{acct.cross_shard_fee_share:.3f}",
         f"{acct.fee_imbalance:.3f}", acct.total_fees)
        for name, acct in accounts.items()
    ]
    write_artifact(
        out_dir, "fees.txt",
        ascii_table(
            ["method", "cross-shard fee share", "fee imbalance (Eq.2)", "total fees"],
            rows, title=f"EXT-FEES — fee attribution under each method, k={K}",
        ),
    )

    # the economic mirror of Fig. 5: hashing maximises the cross-shard
    # fee share, METIS minimises it
    assert (accounts["metis"].cross_shard_fee_share
            < accounts["hash"].cross_shard_fee_share)
    for acct in accounts.values():
        assert acct.transactions == len(pairs)
        assert 0.0 <= acct.cross_shard_fee_share < 1.0
        assert acct.fee_imbalance >= 1.0
