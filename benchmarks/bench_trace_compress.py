"""TRACE-COMPRESS — rctrace v3 size/speed gates vs v2 and regenerate.

The point of the compressed v3 format: Ethereum-scale traces should be
cheap to *store and ship* without giving back the replay-speed win of
the binary data layer.  Measured here on the same logical log:

* file size — v2 (fixed-width mmap layout) vs v3 (delta/varint
  columns + per-section zlib framing), plus the chunked streaming
  writer's output (asserted byte-identical to the in-memory writer);
* open time — mmap-open of v2, streaming decode of v3 (with and
  without the verification pass), against regenerate-and-box;
* equivalence — a two-method sweep from the v3 trace is cell-for-cell
  identical to the same sweep from v2 and from the synthetic source,
  including the jobs=2 decode-per-worker path.

Acceptance gates: v3 <= 0.6x the v2 bytes, and v3 open >= 10x faster
than regenerate-and-box.  Artifact: ``benchmarks/out/trace_compress.txt``.
"""

import time

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.source import config_for_scale
from repro.ethereum.workload import generate_history
from repro.graph.columnar import ColumnarLog
from repro.graph.io import ChunkedTraceWriter, load_columnar, write_columnar

SWEEP_METHODS = ("hash", "fennel")
SWEEP_KS = (2, 4)
RATIO_GATE = 0.6
OPEN_GATE = 10.0


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.benchmark(group="trace-compress")
def test_v3_compression_and_open_time(bench_scale, out_dir, tmp_path):
    seed = 42
    cfg = config_for_scale(bench_scale, seed)

    t0 = time.perf_counter()
    workload = generate_history(cfg)
    log = ColumnarLog(workload.builder.log)
    t_generate = time.perf_counter() - t0

    v2_path = tmp_path / "trace_v2.rct"
    v3_path = tmp_path / "trace_v3.rct"
    chunked_path = tmp_path / "trace_v3_chunked.rct"
    t_write_v2, _ = _best_of(lambda: write_columnar(log, v2_path, version=2), 1)
    t_write_v3, _ = _best_of(lambda: write_columnar(log, v3_path, version=3), 1)

    # the bounded-memory spill writer must emit the identical file
    with ChunkedTraceWriter(chunked_path, version=3, chunk_rows=2048) as w:
        w.extend(log)
    assert chunked_path.read_bytes() == v3_path.read_bytes()

    v2_bytes = v2_path.stat().st_size
    v3_bytes = v3_path.stat().st_size
    ratio = v3_bytes / v2_bytes

    t_v2, v2_log = _best_of(lambda: load_columnar(v2_path))
    t_v3, v3_log = _best_of(lambda: load_columnar(v3_path))
    t_v3_raw, _ = _best_of(lambda: load_columnar(v3_path, verify=False))
    assert v2_log.identical(log)
    assert v3_log.identical(log)

    # --- equivalence: paper-grid cells from v3 == v2 == synthetic ---
    spec_kwargs = dict(methods=SWEEP_METHODS, ks=SWEEP_KS, window_hours=24.0)
    rs_synth = run_experiment(
        ExperimentSpec(scale=bench_scale, workload_seed=seed, **spec_kwargs),
        workload=workload,
    )
    rs_v2 = run_experiment(ExperimentSpec(source=str(v2_path), **spec_kwargs))
    rs_v3 = run_experiment(ExperimentSpec(source=str(v3_path), **spec_kwargs))
    rs_v3_par = run_experiment(
        ExperimentSpec(source=str(v3_path), **spec_kwargs), jobs=2
    )
    for key in rs_synth.keys():
        assert rs_v2.cell(key) == rs_synth.cell(key)
        assert rs_v3.cell(key) == rs_synth.cell(key)
        assert rs_v3_par.cell(key) == rs_synth.cell(key)

    speedup_v3 = t_generate / t_v3 if t_v3 else float("inf")
    size_rows = [
        ("binary v2 (fixed-width)", f"{v2_bytes:10d}", "1.000x",
         f"{t_write_v2 * 1e3:9.1f}"),
        ("binary v3 (delta/varint+zlib)", f"{v3_bytes:10d}",
         f"{ratio:.3f}x", f"{t_write_v3 * 1e3:9.1f}"),
        ("binary v3 (chunked writer)", f"{chunked_path.stat().st_size:10d}",
         f"{ratio:.3f}x", "byte-identical"),
    ]
    open_rows = [
        ("regenerate-and-box (EVM replay)", f"{t_generate * 1e3:9.1f}", "1.0x"),
        ("binary v2 mmap open (verify)", f"{t_v2 * 1e3:9.1f}",
         f"{t_generate / t_v2:.0f}x"),
        ("binary v3 decode (verify)", f"{t_v3 * 1e3:9.1f}",
         f"{speedup_v3:.0f}x"),
        ("binary v3 decode (no verify)", f"{t_v3_raw * 1e3:9.1f}",
         f"{t_generate / t_v3_raw:.0f}x"),
    ]
    write_artifact(
        out_dir, "trace_compress.txt",
        ascii_table(
            ["trace format", "bytes", "vs v2", "write (ms)"],
            size_rows,
            title=(
                f"TRACE-COMPRESS — file size "
                f"(scale={bench_scale}: {len(log)} interactions, "
                f"{log.num_vertices} vertices; gate: v3 <= {RATIO_GATE}x v2)"
            ),
        )
        + "\n\n"
        + ascii_table(
            ["opening the log", "open (ms)", "vs regenerate"],
            open_rows,
            title=(
                f"open time, best of 3 (gate: v3 >= {OPEN_GATE:.0f}x "
                f"regenerate); {len(rs_synth.keys())}-cell sweeps from "
                "v3 == v2 == synthetic, jobs in {1, 2}"
            ),
        ),
    )

    assert ratio <= RATIO_GATE, (
        f"v3 is {ratio:.3f}x the v2 bytes ({v3_bytes} vs {v2_bytes}); "
        f"gate is {RATIO_GATE}x"
    )
    assert speedup_v3 >= OPEN_GATE, (
        f"v3 open only {speedup_v3:.1f}x faster than regenerate "
        f"({t_v3 * 1e3:.1f}ms vs {t_generate * 1e3:.1f}ms)"
    )
