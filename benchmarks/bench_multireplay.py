"""MULTIREPLAY — single-pass fan-out versus independent replays.

Measures the single-pass engine's claim directly: a ≥4-method
comparison replayed through one :class:`MultiReplayEngine` pass is
substantially cheaper than N independent :class:`ReplayEngine` runs,
with bit-identical results.

The comparison set is the streaming/placement design-space run (HASH
plus three FENNEL configurations).  Those methods never repartition,
so their entire cost *is* replay-path cost and the sharing is fully
visible.  Repartitioning methods spend most of their wall-clock inside
their own partitioner (METIS's periodic full-graph partitioning
dominates the paper's five-method set) — per-method work that no
sharing can remove — so the paper set's speedup is bounded by its
streaming share; the artifact records both sets.
"""

import os
import time

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.core.multireplay import MultiReplayEngine
from repro.core.registry import PAPER_ORDER, make_method
from repro.core.replay import ReplayEngine
from repro.graph.snapshot import HOUR

K = 4

#: hash + three FENNEL load-penalty weights: a pure streaming comparison.
STREAMING_SET = [
    ("hash", {}),
    ("fennel", {}),
    ("fennel", {"gamma": 0.5}),
    ("fennel", {"gamma": 3.0}),
]
PAPER_SET = [(name, {}) for name in PAPER_ORDER]


def _methods(specs):
    return [make_method(name, K, seed=1, **kwargs) for name, kwargs in specs]


def _compare(log, specs, metric_window):
    t0 = time.perf_counter()
    singles = [
        ReplayEngine(log, m, metric_window=metric_window).run()
        for m in _methods(specs)
    ]
    t_single = time.perf_counter() - t0

    t0 = time.perf_counter()
    multi = MultiReplayEngine(log, _methods(specs), metric_window=metric_window).run()
    t_multi = time.perf_counter() - t0

    for s, m in zip(singles, multi):
        assert s.series.points == m.series.points
        assert s.events == m.events
        assert s.assignment.as_dict() == m.assignment.as_dict()
    return t_single, t_multi


@pytest.mark.benchmark(group="multireplay")
def test_single_pass_beats_independent_replays(benchmark, runner, out_dir):
    log = runner.workload.builder.log
    mw = 24 * HOUR

    def comparison():
        return _compare(log, STREAMING_SET, mw)

    t_single, t_multi = benchmark.pedantic(comparison, rounds=1, iterations=1)
    t_single_paper, t_multi_paper = _compare(log, PAPER_SET, mw)

    rows = [
        ("streaming (hash + 3x fennel)", len(STREAMING_SET),
         f"{t_single:.3f}", f"{t_multi:.3f}", f"{t_single / t_multi:.2f}x"),
        ("paper five", len(PAPER_SET),
         f"{t_single_paper:.3f}", f"{t_multi_paper:.3f}",
         f"{t_single_paper / t_multi_paper:.2f}x"),
    ]
    write_artifact(
        out_dir, "multireplay.txt",
        ascii_table(
            ["comparison set", "methods", "N x single (s)", "multi (s)", "speedup"],
            rows,
            title="MULTIREPLAY — one shared pass vs independent replays",
        ),
    )

    # the streaming set is pure replay-path cost: the shared pass wins
    # clearly (measured ~1.9x vs the current single engine and ~2.2x
    # vs the pre-multireplay engine).  The wall-clock assertion is
    # opt-in: a single-round timing check on a noisy shared CI runner
    # would fail pushes spuriously, so CI gates only on equivalence
    # (checked above) and the numbers land in the artifact.
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert t_multi < t_single / 1.25, (
            f"single-pass replay not faster: {t_multi:.3f}s vs {t_single:.3f}s"
        )
