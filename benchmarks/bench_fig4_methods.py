"""FIG4 — per-period distributions for all five methods (paper Fig. 4).

Regenerates the box/violin statistics of dynamic edge-cut, dynamic
balance and per-period moves over the four 2017 sub-periods, in the
paper's two configurations (k = 2 and k = 8).

``compute_fig4`` replays all five methods in a single pass over the
shared log (``ExperimentRunner.replay_many``), so the timed region is
one multi-method comparison run per k.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.fig4 import compute_fig4, median_table, render_fig4


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("k", [2, 8])
def test_fig4_distributions(benchmark, runner, k, out_dir):
    cells = benchmark.pedantic(
        compute_fig4, args=(runner, k), rounds=1, iterations=1
    )
    write_artifact(out_dir, f"fig4_k{k}.txt", render_fig4(cells))

    table = median_table(cells)
    periods = {p for (_, p) in table}
    assert len(periods) == 4

    for period in periods:
        # HASH: worst edge-cut of all methods, zero moves
        hash_cut = table[("hash", period)]["edge_cut"]
        for method in ("kl", "metis", "p-metis", "tr-metis"):
            assert table[(method, period)]["edge_cut"] <= hash_cut + 0.05
        assert table[("hash", period)]["moves"] == 0
        # METIS: best (or near-best) edge-cut, most moves of the family
        assert table[("metis", period)]["edge_cut"] <= hash_cut * 0.8
        assert (table[("metis", period)]["moves"]
                > table[("tr-metis", period)]["moves"])

    # aggregate orderings over all of 2017 (medians averaged):
    def agg(method, metric):
        vals = [table[(method, p)][metric] for p in periods]
        return sum(vals) / len(vals)

    # balance: metis worst of the family (the attack anomaly persists)
    assert agg("metis", "balance") > agg("p-metis", "balance")
    # moves: metis >> p-metis > tr-metis
    assert agg("metis", "moves") > 3 * agg("p-metis", "moves")
    assert agg("tr-metis", "moves") < agg("p-metis", "moves")
