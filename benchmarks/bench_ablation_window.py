"""ABL-WINDOW — R-METIS repartitioning window length.

The paper fixes the reduced-graph window at two weeks without
justification; this ablation sweeps one/two/four weeks and reports the
cut/balance/moves tradeoff (longer windows → fewer repartitionings but
staler partitions and larger windows to move).
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.core.replay import ReplayEngine
from repro.core.rmetis import RMetisPartitioner
from repro.graph.snapshot import HOUR, WEEK

K = 2


@pytest.mark.benchmark(group="ablation-window")
def test_window_length_ablation(benchmark, runner, out_dir):
    log = runner.workload.builder.log

    def run_all():
        out = {}
        for weeks in (1, 2, 4):
            method = RMetisPartitioner(K, seed=1, period=weeks * WEEK)
            out[weeks] = ReplayEngine(log, method, metric_window=24 * HOUR).run()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def mean(res, col):
        pts = [p for p in res.series.points if p.interactions > 0]
        return sum(getattr(p, col) for p in pts) / len(pts)

    rows = [
        (f"{weeks}w", f"{mean(res, 'dynamic_edge_cut'):.3f}",
         f"{mean(res, 'dynamic_balance'):.3f}", res.total_moves,
         len(res.events))
        for weeks, res in sorted(results.items())
    ]
    write_artifact(
        out_dir, "ablation_window.txt",
        ascii_table(["window", "dyn edge-cut", "dyn balance", "moves", "repartitions"],
                    rows, title=f"ABL-WINDOW — R-METIS window length, k={K}"),
    )

    # repartition count scales inversely with the window
    assert len(results[1].events) > len(results[2].events) > len(results[4].events)
    # all windows must keep cut far below the hashing level (~0.5)
    for res in results.values():
        assert mean(res, "dynamic_edge_cut") < 0.45
