"""ABL-WINDOW — R-METIS repartitioning window length.

The paper fixes the reduced-graph window at two weeks without
justification; this ablation sweeps one/two/four weeks and reports the
cut/balance/moves tradeoff (longer windows → fewer repartitionings but
staler partitions and larger windows to move).

Window lengths ride in the method specs (``"p-metis?period=..."``),
so all three variants fan out of one shared experiment pass.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.experiments import ExperimentSpec, run_experiment
from repro.graph.snapshot import WEEK

K = 2

WEEKS = (1, 2, 4)


@pytest.mark.benchmark(group="ablation-window")
def test_window_length_ablation(benchmark, runner, bench_scale, out_dir):
    methods = {w: f"p-metis?period={w * WEEK}" for w in WEEKS}
    spec = ExperimentSpec(
        scale=bench_scale,
        workload_seed=runner.seed,
        methods=tuple(methods.values()),
        ks=(K,),
        window_hours=runner.window_hours,
    )

    def run_all():
        rs = run_experiment(spec, workload=runner.workload)
        return {w: rs.get(m, K) for w, m in methods.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (f"{weeks}w", f"{res.mean('dynamic_edge_cut'):.3f}",
         f"{res.mean('dynamic_balance'):.3f}", res.total_moves,
         len(res.events))
        for weeks, res in sorted(results.items())
    ]
    write_artifact(
        out_dir, "ablation_window.txt",
        ascii_table(["window", "dyn edge-cut", "dyn balance", "moves", "repartitions"],
                    rows, title=f"ABL-WINDOW — R-METIS window length, k={K}"),
    )

    # repartition count scales inversely with the window
    assert len(results[1].events) > len(results[2].events) > len(results[4].events)
    # all windows must keep cut far below the hashing level (~0.5)
    for res in results.values():
        assert res.mean("dynamic_edge_cut") < 0.45
