"""TRACE-IO — binary mmap load vs text parse vs regenerate-and-box.

The point of the rctrace v2 format: opening the workload should cost
an ``mmap`` plus verification, not an EVM-lite re-execution of the
whole history (regenerate) or a float-parse of every line (text v1).
Measured here, per source, on the same logical log:

* regenerate-and-box — ``generate_history`` + ``ColumnarLog`` (what
  every sweep paid per process before trace-backed sources);
* text v1 parse — ``ColumnarLog(read_trace(path))``;
* binary v2 load — ``load_columnar(path)`` with and without the
  verification pass.

The acceptance gate asserts binary load is >= 10x faster than
regenerate-and-box.  A second scenario times a cold-start (store-miss)
two-method sweep end to end from each source via ``run_experiment``,
including the jobs=2 mmap-per-worker path.  Artifact:
``benchmarks/out/trace_io.txt``.
"""

import time

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.render import ascii_table
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.source import config_for_scale
from repro.ethereum.workload import generate_history
from repro.graph.columnar import ColumnarLog
from repro.graph.io import load_columnar, read_trace, write_columnar, write_trace

SWEEP_METHODS = ("hash", "fennel")
SWEEP_KS = (2, 4)


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.benchmark(group="trace-io")
def test_trace_load_vs_regenerate(bench_scale, out_dir, tmp_path):
    seed = 42
    cfg = config_for_scale(bench_scale, seed)

    t0 = time.perf_counter()
    workload = generate_history(cfg)
    log = ColumnarLog(workload.builder.log)
    t_generate = time.perf_counter() - t0

    text_path = tmp_path / "trace.txt"
    binary_path = tmp_path / "trace.rct"
    write_trace(workload.builder.log, str(text_path))
    write_columnar(log, binary_path)

    t_text, text_log = _best_of(lambda: ColumnarLog(read_trace(str(text_path))))
    t_bin, bin_log = _best_of(lambda: load_columnar(binary_path))
    t_bin_raw, _ = _best_of(lambda: load_columnar(binary_path, verify=False))

    # every path must hand replays the same log, bit for bit
    assert text_log.identical(log)
    assert bin_log.identical(log)

    # --- end-to-end: cold-start (store-miss) sweep from each source ---
    spec_kwargs = dict(methods=SWEEP_METHODS, ks=SWEEP_KS, window_hours=24.0)
    synth_spec = ExperimentSpec(scale=bench_scale, workload_seed=seed, **spec_kwargs)
    trace_spec = ExperimentSpec(source=str(binary_path), **spec_kwargs)

    t0 = time.perf_counter()
    rs_synth = run_experiment(synth_spec)      # regenerates the workload
    t_sweep_synth = time.perf_counter() - t0

    t0 = time.perf_counter()
    rs_trace = run_experiment(trace_spec)      # mmaps the trace
    t_sweep_trace = time.perf_counter() - t0

    t0 = time.perf_counter()
    rs_trace2 = run_experiment(trace_spec, jobs=2)   # workers mmap themselves
    t_sweep_trace2 = time.perf_counter() - t0

    for key in rs_synth.keys():
        assert rs_trace.cell(key) == rs_synth.cell(key)
        assert rs_trace2.cell(key) == rs_synth.cell(key)

    speedup = t_generate / t_bin if t_bin else float("inf")
    rows = [
        ("regenerate-and-box (EVM replay)", f"{t_generate * 1e3:9.1f}", "1.0x"),
        ("text v1 parse", f"{t_text * 1e3:9.1f}",
         f"{t_generate / t_text:.1f}x"),
        ("binary v2 mmap load (verify)", f"{t_bin * 1e3:9.1f}",
         f"{speedup:.0f}x"),
        ("binary v2 mmap load (no verify)", f"{t_bin_raw * 1e3:9.1f}",
         f"{t_generate / t_bin_raw:.0f}x"),
    ]
    sweep_rows = [
        ("synthetic source (regenerates)", f"{t_sweep_synth:8.2f}s", "1.0x"),
        ("trace source, jobs=1 (mmap)", f"{t_sweep_trace:8.2f}s",
         f"{t_sweep_synth / t_sweep_trace:.1f}x"),
        ("trace source, jobs=2 (mmap/worker)", f"{t_sweep_trace2:8.2f}s",
         f"{t_sweep_synth / t_sweep_trace2:.1f}x"),
    ]
    n_cells = len(synth_spec.cells())
    write_artifact(
        out_dir, "trace_io.txt",
        ascii_table(
            ["log source", "open (ms)", "vs regenerate"],
            rows,
            title=(
                f"TRACE-IO — opening the workload log "
                f"(scale={bench_scale}: {len(log)} interactions, "
                f"{log.num_vertices} vertices; best of 3)"
            ),
        )
        + "\n\n"
        + ascii_table(
            ["cold-start sweep (store miss)", "wall-clock", "speedup"],
            sweep_rows,
            title=(
                f"end-to-end: {n_cells}-cell sweep "
                f"({len(SWEEP_METHODS)} methods x {len(SWEEP_KS)} ks) "
                "via run_experiment, results bit-identical"
            ),
        ),
    )

    # the acceptance gate: mmap load >= 10x faster than regenerating
    assert speedup >= 10.0, (
        f"binary load only {speedup:.1f}x faster than regenerate "
        f"({t_bin * 1e3:.1f}ms vs {t_generate * 1e3:.1f}ms)"
    )
